//! A lightweight item/function parser on top of [`crate::lex`].
//!
//! This is not a full Rust parser: it recovers exactly the structure the
//! semantic rules need — every `fn` item with its body token span, owner
//! `impl` type, the calls it makes, and complexity-ish shape metrics —
//! while staying dependency-free. Constructs it does not model (macro
//! definitions, const generic default expressions) degrade gracefully:
//! a `fn $name` inside `macro_rules!` is simply not an item, and a call
//! that never resolves to a workspace function grows no call-graph edge.

use crate::lex::{in_ranges, Lexed, Tok};

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Callee identifier (`from_bytes`, `categorize_log_timed`, …).
    pub name: String,
    /// The path segment immediately before `::name`, when the call is
    /// qualified (`mdf` in `mdf::from_bytes`, `Module` in
    /// `Module::from_tag`).
    pub qual: Option<String>,
    /// `true` for `receiver.name(...)` method-call syntax.
    pub is_method: bool,
    /// `true` when the receiver is literally `self`.
    pub recv_self: bool,
    /// 1-based source line.
    pub line: u32,
}

/// One parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// Function name.
    pub name: String,
    /// Enclosing `impl` type, when the fn is a method/associated fn.
    pub owner: Option<String>,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// Token range of the body, exclusive of the braces. `None` for
    /// bodyless trait declarations.
    pub body: Option<(usize, usize)>,
    /// Line of the last body token (used to anchor whole-fn findings).
    pub end_line: u32,
    /// `true` when the fn sits inside a `#[cfg(test)]` range.
    pub is_test: bool,
    /// Call sites inside the body, in source order.
    pub calls: Vec<CallSite>,
    /// Cyclomatic-ish complexity: 1 + branch points (`if`, `while`,
    /// `for`, `loop`, `match` arms, `&&`, `||`, `?`).
    pub complexity: u32,
    /// Maximum brace-nesting depth inside the body.
    pub nesting: u32,
    /// Non-structured exits: `return`, `break`, `continue`, `?`.
    pub exits: u32,
}

impl FnInfo {
    /// `Owner::name` for methods, bare `name` for free functions.
    pub fn qualified(&self) -> String {
        match &self.owner {
            Some(o) => format!("{o}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The parsed structure of one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Every `fn` item, in source order.
    pub fns: Vec<FnInfo>,
    /// `use`-import leaves: `(imported name, preceding path segment)`.
    /// `use crate::mdf::from_bytes` yields `("from_bytes", "mdf")`;
    /// renames record the local name (`use x::y as z` → `("z", "x")`).
    pub imports: Vec<(String, String)>,
}

/// Keywords that can directly precede `(` without being a call.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "fn", "in", "let", "mut", "ref", "move",
    "break", "continue", "else", "as", "where", "impl", "dyn", "use", "pub", "crate", "super",
];

/// State for one function whose body is currently open.
struct OpenFn {
    /// Index into `ParsedFile::fns`.
    idx: usize,
    /// Brace depth just before the body `{` was consumed.
    open_depth: i32,
}

/// Parse one lexed file into its `fn` items.
pub fn parse_file(lexed: &Lexed, tests: &[(u32, u32)]) -> ParsedFile {
    let toks = &lexed.tokens;
    let mut out = ParsedFile::default();
    let mut depth = 0i32;
    // (impl type name, brace depth at which the impl block opened)
    let mut impl_stack: Vec<(String, i32)> = Vec::new();
    let mut fn_stack: Vec<OpenFn> = Vec::new();
    // Pending fn whose signature is being scanned: (fn index, paren depth).
    let mut pending: Option<(usize, i32)> = None;

    let mut i = 0usize;
    while i < toks.len() {
        // --- signature scanning mode -----------------------------------
        if let Some((fidx, ref mut paren)) = pending {
            match &toks[i].tok {
                Tok::Punct('(') => *paren += 1,
                Tok::Punct(')') => *paren -= 1,
                Tok::Punct(';') if *paren == 0 => {
                    // Bodyless trait-method declaration.
                    pending = None;
                }
                Tok::Punct('{') if *paren == 0 => {
                    out.fns[fidx].body = Some((i + 1, i + 1));
                    fn_stack.push(OpenFn { idx: fidx, open_depth: depth });
                    depth += 1;
                    pending = None;
                }
                _ => {}
            }
            i += 1;
            continue;
        }

        match &toks[i].tok {
            Tok::Ident(kw) if kw == "impl" && fn_stack.is_empty() => {
                // Extract the impl target: the last path-segment ident at
                // angle-depth 0 before the opening `{` (after `for` in
                // trait impls), stopping at a `where` clause.
                let mut j = i + 1;
                let mut angle = 0i32;
                let mut target: Option<String> = None;
                let mut in_where = false;
                while j < toks.len() {
                    match &toks[j].tok {
                        Tok::Punct('{') if angle <= 0 => break,
                        Tok::Punct(';') if angle <= 0 => break, // `impl Foo;` — malformed, bail
                        Tok::Punct('<') => angle += 1,
                        Tok::Punct('>') => angle -= 1,
                        Tok::Ident(w) if w == "where" && angle <= 0 => in_where = true,
                        Tok::Ident(seg) if angle <= 0 && !in_where && seg != "for" => {
                            target = Some(seg.clone());
                        }
                        _ => {}
                    }
                    j += 1;
                }
                if j < toks.len() && lexed.is_punct(j, '{') {
                    if let Some(name) = target {
                        impl_stack.push((name, depth));
                    }
                    depth += 1;
                    i = j + 1;
                    continue;
                }
                i = j;
                continue;
            }
            Tok::Ident(kw) if kw == "fn" => {
                if let Some(name) = lexed.ident(i + 1) {
                    let line = toks[i].line;
                    // Owner: a method is a fn declared directly inside an
                    // impl block (not nested in another fn body).
                    let owner = match (fn_stack.is_empty(), impl_stack.last()) {
                        (true, Some((ty, d))) if depth == d + 1 => Some(ty.clone()),
                        _ => None,
                    };
                    out.fns.push(FnInfo {
                        name: name.to_owned(),
                        owner,
                        line,
                        body: None,
                        end_line: line,
                        is_test: in_ranges(tests, line),
                        calls: Vec::new(),
                        complexity: 1,
                        nesting: 0,
                        exits: 0,
                    });
                    pending = Some((out.fns.len() - 1, 0));
                    i += 2;
                    continue;
                }
            }
            Tok::Ident(kw) if kw == "use" && fn_stack.is_empty() => {
                i = parse_use(lexed, i + 1, &mut out.imports);
                continue;
            }
            _ => {}
        }

        // --- body token processing -------------------------------------
        if let Some(open) = fn_stack.last() {
            let fidx = open.idx;
            let body_depth = open.open_depth + 1;
            match &toks[i].tok {
                Tok::Ident(name) => {
                    record_body_ident(lexed, i, name, &mut out.fns[fidx]);
                }
                Tok::Punct('{') => {
                    let nest = (depth + 1 - body_depth).max(0) as u32;
                    if nest > out.fns[fidx].nesting {
                        out.fns[fidx].nesting = nest;
                    }
                }
                Tok::Punct('?') => {
                    out.fns[fidx].complexity += 1;
                    out.fns[fidx].exits += 1;
                }
                Tok::Punct('=') if lexed.is_punct(i + 1, '>') => {
                    out.fns[fidx].complexity += 1; // match arm
                }
                Tok::Punct('&') if lexed.is_punct(i + 1, '&') => {
                    out.fns[fidx].complexity += 1;
                }
                Tok::Punct('|') if lexed.is_punct(i + 1, '|') => {
                    out.fns[fidx].complexity += 1;
                }
                _ => {}
            }
            // Skip the second half of two-token operators so `&&&` or
            // `a == b` never double-count.
            if matches!(&toks[i].tok, Tok::Punct('&') | Tok::Punct('|') | Tok::Punct('='))
                && (lexed.is_punct(i + 1, '&') || lexed.is_punct(i + 1, '|'))
                && matches!((&toks[i].tok, &toks[i + 1].tok),
                    (Tok::Punct(a), Tok::Punct(b)) if a == b || (*a == '=' && *b == '>'))
            {
                i += 1;
            }
        }

        match &toks[i].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth -= 1;
                if let Some(open) = fn_stack.last() {
                    if depth == open.open_depth {
                        let f = &mut out.fns[open.idx];
                        if let Some((start, _)) = f.body {
                            f.body = Some((start, i));
                        }
                        f.end_line = toks[i].line;
                        fn_stack.pop();
                    }
                }
                if let Some((_, d)) = impl_stack.last() {
                    if depth == *d {
                        impl_stack.pop();
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    out
}

/// Record calls and branch keywords for one identifier token in a body.
fn record_body_ident(lexed: &Lexed, i: usize, name: &str, f: &mut FnInfo) {
    let line = lexed.tokens[i].line;
    match name {
        // `match` itself is not counted — its arms are (via `=>`), and
        // counting both would double-charge every match expression.
        "if" | "while" | "for" | "loop" => {
            f.complexity += 1;
            return;
        }
        "return" | "break" | "continue" => {
            f.exits += 1;
            return;
        }
        _ => {}
    }
    // A call is `name (` — but not `name!(` (macro) and not a keyword.
    if !lexed.is_punct(i + 1, '(') || NON_CALL_KEYWORDS.contains(&name) {
        return;
    }
    let is_method = i > 0 && lexed.is_punct(i - 1, '.');
    let recv_self = is_method && i >= 2 && lexed.ident(i - 2) == Some("self");
    let qual = if i >= 3 && lexed.is_punct(i - 1, ':') && lexed.is_punct(i - 2, ':') {
        lexed.ident(i - 3).map(str::to_owned)
    } else {
        None
    };
    f.calls.push(CallSite { name: name.to_owned(), qual, is_method, recv_self, line });
}

/// Parse one `use` statement starting just after the `use` keyword; returns
/// the index just past its `;`. Records every imported leaf with the path
/// segment preceding it (brace groups and `as` renames included).
fn parse_use(lexed: &Lexed, mut i: usize, imports: &mut Vec<(String, String)>) -> usize {
    let toks = &lexed.tokens;
    // Segment stack across brace groups: the last ident seen at each level.
    let mut stack: Vec<String> = Vec::new();
    let mut last: Option<String> = None;
    let mut renamed: Option<String> = None;
    let mut flush = |last: &mut Option<String>, renamed: &mut Option<String>, stack: &[String]| {
        if let Some(leaf) = renamed.take().or_else(|| last.take()) {
            if leaf != "*" {
                let parent = stack.last().cloned().unwrap_or_default();
                if !parent.is_empty() {
                    imports.push((leaf, parent));
                }
            }
        }
        *last = None;
    };
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct(';') => {
                flush(&mut last, &mut renamed, &stack);
                return i + 1;
            }
            Tok::Punct('{') => {
                if let Some(seg) = last.take() {
                    stack.push(seg);
                }
            }
            Tok::Punct('}') => {
                flush(&mut last, &mut renamed, &stack);
                stack.pop();
            }
            Tok::Punct(',') => flush(&mut last, &mut renamed, &stack),
            Tok::Ident(seg) if seg == "as" => {
                // The next ident is the local (renamed) binding.
                if let Some(alias) = lexed.ident(i + 1) {
                    renamed = Some(alias.to_owned());
                    i += 2;
                    continue;
                }
            }
            Tok::Ident(seg) => {
                if last.is_some() && lexed.is_punct(i.wrapping_sub(1), ':') {
                    // `a::b` — shift the previous segment onto the path.
                    if let Some(prev) = last.take() {
                        stack.push(prev);
                        last = Some(seg.clone());
                        // Collapse: we only need the immediate parent, so
                        // drop grandparents beyond one brace level… keep
                        // full stack; parent lookup uses `.last()`.
                        i += 1;
                        continue;
                    }
                }
                last = Some(seg.clone());
            }
            _ => {}
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::{lex, test_line_ranges};

    fn parse(src: &str) -> ParsedFile {
        let lexed = lex(src);
        let tests = test_line_ranges(&lexed);
        parse_file(&lexed, &tests)
    }

    #[test]
    fn free_fns_and_methods_are_distinguished() {
        let src = "\
fn free() {}
struct S;
impl S {
    fn method(&self) {}
    pub fn assoc() -> S { S }
}
impl std::fmt::Display for S {
    fn fmt(&self) {}
}
";
        let p = parse(src);
        let names: Vec<(String, Option<String>)> =
            p.fns.iter().map(|f| (f.name.clone(), f.owner.clone())).collect();
        assert_eq!(
            names,
            vec![
                ("free".into(), None),
                ("method".into(), Some("S".into())),
                ("assoc".into(), Some("S".into())),
                ("fmt".into(), Some("S".into())),
            ]
        );
    }

    #[test]
    fn generic_impls_resolve_their_target() {
        let src = "impl<'a, T: Clone> Wrapper<T> where T: Copy { fn get(&self) {} }";
        let p = parse(src);
        assert_eq!(p.fns[0].owner.as_deref(), Some("Wrapper"));
    }

    #[test]
    fn calls_capture_qualifier_method_and_self() {
        let src = "\
fn driver(x: &X) {
    helper();
    mdf::from_bytes(b);
    x.render();
    self.step();
    format!(\"{}\", also_called(1));
}
";
        let p = parse(src);
        let calls = &p.fns[0].calls;
        let by_name: Vec<&str> = calls.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(by_name, vec!["helper", "from_bytes", "render", "step", "also_called"]);
        assert_eq!(calls[1].qual.as_deref(), Some("mdf"));
        assert!(calls[2].is_method && !calls[2].recv_self);
        assert!(calls[3].is_method && calls[3].recv_self);
        assert!(!calls[0].is_method && calls[0].qual.is_none());
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let src = "fn f() { if (a) {} panic!(\"x\"); matches!(y, Z); while (b) {} }";
        let p = parse(src);
        assert!(p.fns[0].calls.is_empty(), "{:?}", p.fns[0].calls);
    }

    #[test]
    fn macro_rules_bodies_do_not_create_fn_items() {
        let src = "\
macro_rules! getter {
    ($name:ident) => {
        fn $name() {}
    };
}
fn real() {}
";
        let p = parse(src);
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "real");
    }

    #[test]
    fn complexity_counts_branches_arms_and_try() {
        // 1 base + if + for + 2 match arms + && + ? = 7
        let src = "\
fn f(x: u8) -> Option<u8> {
    if x > 1 && x < 9 {
        for _ in 0..x {}
    }
    match x { 0 => {}, _ => {} }
    let y = g(x)?;
    Some(y)
}
";
        let p = parse(src);
        assert_eq!(p.fns[0].complexity, 7, "{:?}", p.fns[0]);
        assert_eq!(p.fns[0].exits, 1);
    }

    #[test]
    fn nesting_is_relative_to_the_body() {
        let src = "fn flat() { a(); }\nfn deep() { if x { if y { if z { a(); } } } }";
        let p = parse(src);
        assert_eq!(p.fns[0].nesting, 0);
        assert_eq!(p.fns[1].nesting, 3);
    }

    #[test]
    fn bodyless_trait_decls_have_no_body() {
        let src = "trait T { fn required(&self) -> u8; fn provided(&self) {} }";
        let p = parse(src);
        assert_eq!(p.fns[0].body, None);
        assert!(p.fns[1].body.is_some());
    }

    #[test]
    fn nested_fns_attribute_tokens_to_the_inner_fn() {
        let src = "\
fn outer() {
    fn inner() { deep_call(); }
    outer_call();
}
";
        let p = parse(src);
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        let inner = p.fns.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(outer.calls.len(), 1);
        assert_eq!(outer.calls[0].name, "outer_call");
        assert_eq!(inner.calls[0].name, "deep_call");
        assert!(inner.owner.is_none());
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let src = "\
fn prod() {}
#[cfg(test)]
mod tests {
    fn helper() {}
}
";
        let p = parse(src);
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
    }

    #[test]
    fn use_imports_record_leaf_and_parent() {
        let src = "\
use crate::mdf::from_bytes;
use mosaic_darshan::{validate, ops::extract_view};
use std::io::Read as IoRead;
";
        let p = parse(src);
        assert!(p.imports.contains(&("from_bytes".into(), "mdf".into())));
        assert!(p.imports.contains(&("extract_view".into(), "ops".into())));
        assert!(p.imports.contains(&("IoRead".into(), "io".into())));
    }

    #[test]
    fn end_line_tracks_the_closing_brace() {
        let src = "fn f() {\n  a();\n  b();\n}\n";
        let p = parse(src);
        assert_eq!(p.fns[0].line, 1);
        assert_eq!(p.fns[0].end_line, 4);
    }
}
