//! L8/L9 — interprocedural wire-taint dataflow and guard-set parity.
//!
//! **L8 (wire-taint)** answers one question statically: can a length that an
//! attacker controls — a value read straight off the wire by one of the
//! binary parsers — reach an allocation sink (`with_capacity`, `reserve`,
//! `vec![x; n]`, a slice-range bound) without first being compared against a
//! named `MAX_*` guard constant? The runtime defense (the guard-then-allocate
//! pattern in `mdf.rs`/`dxt.rs`/`view.rs`) only works if *every* path from a
//! `get_u32_le`-style read to an allocation goes through a guard; this pass
//! proves that over the same workspace call graph L5 uses, and prints the
//! full taint path in every diagnostic so the finding is self-explaining.
//!
//! The analysis is a flow-sensitive abstract interpretation over the token
//! stream of each function body, plus an interprocedural fixpoint of small
//! per-function summaries:
//!
//! * **Sources** — calls to wire-read helpers (`get_u32`, `get_u32_le`,
//!   `le_u32`, cursor methods `u16`/`u32`/`u64`/…) inside the parser files.
//!   The mdf getters are macro-generated and invisible to the item parser,
//!   which is why sources are seeded by *name*, scoped to the parser files.
//! * **Propagation** — through `let` bindings, assignments, arithmetic,
//!   field/`?`/method chains, and across calls via summaries: a callee can
//!   *return* wire taint, *pass through* a parameter, or *sink* a parameter.
//! * **Sanitizers** — a comparison against a `MAX_*` constant. An
//!   exceed-direction guard with a diverging body (`if n > MAX_X { return
//!   Err(..) }`) cleanses the variable from the guard to the end of the
//!   enclosing scope; a within-direction guard (`if n <= MAX_X { .. }`)
//!   cleanses only inside its body. `.min(MAX_X)`/`.clamp(..)` against a
//!   constant also launders, because the result is bounded by construction.
//! * **Sinks** — `with_capacity`/`reserve`/`reserve_exact` arguments,
//!   `vec![elem; n]` lengths, and slice-range bounds.
//!
//! **L9 (guard parity)** is the static twin of the runtime differential
//! oracle: it extracts the set of `MAX_*` constants each parser actually
//! compares against and fails if the owned (`mdf.rs`) and borrowed
//! (`view.rs`) parsers drift, or if a parser guards with a constant that is
//! not declared in the shared `limits.rs` module.
//!
//! Known approximations (all of which err toward *under*-reporting noise,
//! not false alarms, and are covered by fixtures): match-arm pattern
//! bindings and closure parameters are not tracked, and a guard inside an
//! expression-position `if` only sanitizes to the end of that expression.

use std::collections::{BTreeMap, BTreeSet};

use crate::graph::CallGraph;
use crate::lex::{in_ranges, test_line_ranges, Lexed, Tok};
use crate::parse::CallSite;

/// Files whose wire-read helper names seed taint. Matching is by basename so
/// the fixtures can exercise the pass without living in `crates/darshan`.
const WIRE_FILE_BASENAMES: &[&str] = &["mdf.rs", "dxt.rs", "view.rs"];

/// Free functions (or method names) that read a scalar off the wire.
const WIRE_FREE_FNS: &[&str] = &[
    "get_u8",
    "get_u16",
    "get_u32",
    "get_i32",
    "get_u64",
    "get_i64",
    "get_f64",
    "get_u16_le",
    "get_u32_le",
    "get_i32_le",
    "get_u64_le",
    "get_i64_le",
    "get_f64_le",
    "le_u8",
    "le_u16",
    "le_u32",
    "le_i32",
    "le_u64",
    "le_i64",
    "le_f64",
];

/// Method-position-only sources: the borrowed-view cursor reads
/// (`cur.u32("context")?`). Bare names are too common to seed in free-fn
/// position.
const WIRE_METHODS: &[&str] = &["u8", "u16", "u32", "i32", "u64", "i64", "f64"];

/// Allocation sinks: any tainted argument is a finding.
const SINK_FNS: &[&str] = &["with_capacity", "reserve", "reserve_exact"];

/// Methods whose result is never attacker-sized regardless of the receiver.
const CLEAN_METHODS: &[&str] = &["len", "is_empty", "remaining", "capacity", "count"];

/// Methods that bound their receiver by their argument: the result is only
/// as tainted as the *arguments* (`n.min(MAX_ACCESSES)` is clean).
const CLAMP_METHODS: &[&str] = &["min", "clamp"];

/// `true` for files whose wire-read names are taint sources.
fn is_wire_file(rel: &str) -> bool {
    matches!(rel.rsplit('/').next(), Some("mdf.rs" | "dxt.rs" | "view.rs"))
}

/// `true` for a named bomb-guard constant (`MAX_RECORDS`, `limits::MAX_…`).
fn is_guard_const(name: &str) -> bool {
    name.len() > 4
        && name.starts_with("MAX_")
        && name.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// `true` for an identifier that can be a local variable.
fn is_var(name: &str) -> bool {
    name.chars().next().is_some_and(|c| c.is_ascii_lowercase() || c == '_')
        && !matches!(
            name,
            "if" | "let"
                | "else"
                | "while"
                | "for"
                | "match"
                | "return"
                | "in"
                | "as"
                | "mut"
                | "ref"
                | "fn"
                | "self"
        )
}

/// One L8/L9 diagnostic, pre-`Finding` (the rule is attached in `rules.rs`).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct TaintFinding {
    /// Workspace-relative path.
    pub rel: String,
    /// 1-based line.
    pub line: u32,
    /// Full message including the taint path.
    pub message: String,
}

/// The abstract value of one expression: clean, wire-derived (with the
/// provenance chain from the read to here), and/or derived from the enclosing
/// function's parameters (chain per parameter index).
#[derive(Debug, Clone, Default)]
struct Taint {
    wire: Option<Vec<String>>,
    params: BTreeMap<usize, Vec<String>>,
}

impl Taint {
    fn union(mut self, other: Taint) -> Taint {
        if self.wire.is_none() {
            self.wire = other.wire;
        }
        for (k, v) in other.params {
            self.params.entry(k).or_insert(v);
        }
        self
    }
}

/// Interprocedural summary of one function, grown monotonically to fixpoint.
#[derive(Debug, Clone, Default)]
struct Summary {
    /// The function can return a wire-derived value (chain: source → return).
    returns_wire: Option<Vec<String>>,
    /// Parameters the return value can be derived from.
    returns_params: BTreeSet<usize>,
    /// Parameters that can reach an allocation sink inside the callee
    /// (chain: parameter → sink), with no dominating guard on that path.
    sink_params: BTreeMap<usize, Vec<String>>,
}

/// Merge `from` into `into`; `true` if anything grew.
fn merge_summary(into: &mut Summary, from: &Summary) -> bool {
    let mut changed = false;
    if into.returns_wire.is_none() && from.returns_wire.is_some() {
        into.returns_wire = from.returns_wire.clone();
        changed = true;
    }
    for p in &from.returns_params {
        changed |= into.returns_params.insert(*p);
    }
    for (p, chain) in &from.sink_params {
        if !into.sink_params.contains_key(p) {
            into.sink_params.insert(*p, chain.clone());
            changed = true;
        }
    }
    changed
}

/// Run the L8 pass over a call graph. `lexed` maps each node's `rel` to its
/// token stream (nodes without an entry are skipped).
pub(crate) fn check_wire_taint(
    graph: &CallGraph<'_>,
    lexed: &BTreeMap<&str, &Lexed>,
) -> Vec<TaintFinding> {
    let n = graph.nodes.len();
    let mut summaries = vec![Summary::default(); n];
    // Summaries grow monotonically, so the fixpoint terminates; the bound is
    // a backstop for pathological call chains, far above the real depth.
    for _round in 0..16 {
        let mut changed = false;
        let mut next = summaries.clone();
        for (idx, slot) in next.iter_mut().enumerate() {
            let node = &graph.nodes[idx];
            if node.f.is_test || node.f.body.is_none() {
                continue;
            }
            let Some(lx) = lexed.get(node.rel) else { continue };
            let (s, _) = analyze_fn(graph, idx, lx, &summaries, false);
            changed |= merge_summary(slot, &s);
        }
        summaries = next;
        if !changed {
            break;
        }
    }
    // Reporting pass: same walk, with local wire-to-sink flows emitted.
    let mut out = Vec::new();
    for idx in 0..n {
        let node = &graph.nodes[idx];
        if node.f.is_test || node.f.body.is_none() {
            continue;
        }
        let Some(lx) = lexed.get(node.rel) else { continue };
        let (_, findings) = analyze_fn(graph, idx, lx, &summaries, true);
        out.extend(findings);
    }
    out.sort();
    out.dedup();
    out
}

/// Analyze one function body; returns its summary and (in emit mode) the
/// findings anchored inside it.
fn analyze_fn(
    graph: &CallGraph<'_>,
    node: usize,
    lexed: &Lexed,
    summaries: &[Summary],
    emit: bool,
) -> (Summary, Vec<TaintFinding>) {
    let nref = &graph.nodes[node];
    let f = nref.f;
    let Some((bstart, bend)) = f.body else {
        return (Summary::default(), Vec::new());
    };
    let mut w = Walker {
        lexed,
        rel: nref.rel,
        node,
        graph,
        summaries,
        my: Summary::default(),
        vars: BTreeMap::new(),
        sanitized: Vec::new(),
        findings: Vec::new(),
        emit: false,
        wire_file: is_wire_file(nref.rel),
    };
    let label = nref.label();
    for (i, p) in param_names(lexed, &f.name, bstart).into_iter().enumerate() {
        let chain = vec![format!("{}:{} parameter `{p}` of `{label}`", nref.rel, f.line)];
        w.vars.insert(p, Taint { wire: None, params: std::iter::once((i, chain)).collect() });
    }
    // Two passes so taint carried across a loop back-edge (assigned late in
    // the body, used early in the next iteration) is observed; findings are
    // emitted only on the final pass.
    for pass in 0..2 {
        w.emit = emit && pass == 1;
        let trailing = w.scan_stmts(bstart, bend);
        w.record_return(&trailing);
    }
    (w.my, w.findings)
}

/// Extract parameter names from the signature preceding `body_start`,
/// skipping `self` and `_`-prefixed bindings. Indices line up with
/// positional (non-receiver) arguments at call sites.
fn param_names(lexed: &Lexed, fn_name: &str, body_start: usize) -> Vec<String> {
    let toks = &lexed.tokens;
    let mut fi = None;
    let mut i = body_start.min(toks.len());
    while i > 0 {
        i -= 1;
        if lexed.ident(i) == Some("fn") && lexed.ident(i + 1) == Some(fn_name) {
            fi = Some(i);
            break;
        }
    }
    let Some(fi) = fi else { return Vec::new() };
    // Skip generics between the name and the parameter list.
    let mut j = fi + 2;
    let mut angle = 0i32;
    while j < toks.len() {
        match &toks[j].tok {
            Tok::Punct('<') => angle += 1,
            Tok::Punct('>') => angle -= 1,
            Tok::Punct('(') if angle <= 0 => break,
            _ => {}
        }
        j += 1;
    }
    let mut out = Vec::new();
    let mut depth = 0i32;
    while j < toks.len() && j < body_start {
        if lexed.is_punct(j, '(') {
            depth += 1;
        } else if lexed.is_punct(j, ')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if let Some(name) = lexed.ident(j) {
            // A parameter name is an ident directly followed by a single `:`
            // (not `::`), not itself part of a path.
            if depth >= 1
                && !matches!(name, "self" | "mut" | "ref")
                && !name.starts_with('_')
                && lexed.is_punct(j + 1, ':')
                && !lexed.is_punct(j + 2, ':')
                && !lexed.is_punct(j.wrapping_sub(1), ':')
            {
                out.push(name.to_owned());
            }
        }
        j += 1;
    }
    out
}

/// The per-function abstract interpreter.
struct Walker<'a, 'g> {
    lexed: &'a Lexed,
    rel: &'a str,
    node: usize,
    graph: &'g CallGraph<'a>,
    summaries: &'g [Summary],
    my: Summary,
    vars: BTreeMap<String, Taint>,
    /// `(name, from_token, to_token)` ranges where a variable is guard-clean.
    sanitized: Vec<(String, usize, usize)>,
    findings: Vec<TaintFinding>,
    emit: bool,
    wire_file: bool,
}

impl Walker<'_, '_> {
    fn id(&self, i: usize) -> Option<&str> {
        self.lexed.ident(i)
    }

    fn p(&self, i: usize, c: char) -> bool {
        self.lexed.is_punct(i, c)
    }

    fn line(&self, i: usize) -> u32 {
        self.lexed.tokens.get(i).map_or(0, |t| t.line)
    }

    /// Index of the token matching the opener at `open` (`{}`/`()`/`[]`).
    fn matching(&self, open: usize, end: usize, oc: char, cc: char) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < end {
            if self.p(i, oc) {
                depth += 1;
            } else if self.p(i, cc) {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        end.saturating_sub(1)
    }

    fn match_brace(&self, open: usize, end: usize) -> usize {
        self.matching(open, end, '{', '}')
    }

    /// Current abstract value of `name` at token position `at`.
    fn lookup(&self, name: &str, at: usize) -> Taint {
        if self.sanitized.iter().any(|(n, a, b)| n == name && at >= *a && at <= *b) {
            return Taint::default();
        }
        self.vars.get(name).cloned().unwrap_or_default()
    }

    /// Bind `name` at token `at`. A rebind invalidates any sanitize range
    /// still covering the binding point — the old proof no longer applies to
    /// the new value.
    fn bind(&mut self, name: &str, at: usize, mut t: Taint, line: u32) {
        self.sanitized.retain(|(n, a, b)| !(n == name && *a <= at && at <= *b));
        if let Some(chain) = &mut t.wire {
            chain.push(format!("{}:{line} `let {name}`", self.rel));
        }
        self.vars.insert(name.to_owned(), t);
    }

    /// Record a tainted value reaching an allocation sink.
    fn sink(&mut self, line: u32, sink_label: &str, t: &Taint) {
        if self.emit {
            if let Some(chain) = &t.wire {
                let mut full = chain.clone();
                full.push(format!("{}:{line} sizes `{sink_label}`", self.rel));
                self.findings.push(TaintFinding {
                    rel: self.rel.to_owned(),
                    line,
                    message: format!(
                        "`{sink_label}` is sized by a wire-read value with no dominating \
                         `MAX_*` guard on this path; taint path: {}; compare the length \
                         against a named `limits::MAX_*` bound before allocating, or justify \
                         with `lint: allow(taint, \"...\")`",
                        full.join(" -> ")
                    ),
                });
            }
        }
        for (p, chain) in &t.params {
            let mut c = chain.clone();
            c.push(format!("{}:{line} sizes `{sink_label}`", self.rel));
            self.my.sink_params.entry(*p).or_insert(c);
        }
    }

    /// Fold a returned (or trailing-expression) value into the summary.
    fn record_return(&mut self, t: &Taint) {
        if self.my.returns_wire.is_none() {
            if let Some(chain) = &t.wire {
                self.my.returns_wire = Some(chain.clone());
            }
        }
        for p in t.params.keys() {
            self.my.returns_params.insert(*p);
        }
    }

    /// Scan a statement region; returns the trailing-expression taint (the
    /// last expression not terminated by `;`).
    fn scan_stmts(&mut self, start: usize, end: usize) -> Taint {
        let mut i = start;
        let mut trailing = Taint::default();
        while i < end {
            if let Some(name) = self.id(i).map(str::to_owned) {
                match name.as_str() {
                    "fn" => {
                        // Nested fn: its tokens belong to its own node.
                        i = self.skip_fn(i, end);
                        trailing = Taint::default();
                        continue;
                    }
                    "let" => {
                        i = self.handle_let(i, end);
                        trailing = Taint::default();
                        continue;
                    }
                    "if" => {
                        let (t, ni) = self.handle_if(i, end, false);
                        trailing = t;
                        i = ni;
                        continue;
                    }
                    "while" => {
                        let (_, ni) = self.handle_if(i, end, true);
                        trailing = Taint::default();
                        i = ni;
                        continue;
                    }
                    "loop" => {
                        let ob = self.find_body_brace(i + 1, end);
                        let cb = self.match_brace(ob, end);
                        self.scan_loop_body(ob + 1, cb);
                        trailing = Taint::default();
                        i = cb + 1;
                        continue;
                    }
                    "for" => {
                        i = self.handle_for(i, end);
                        trailing = Taint::default();
                        continue;
                    }
                    "match" => {
                        let (t, ni) = self.handle_match(i, end);
                        trailing = t;
                        i = ni;
                        continue;
                    }
                    "return" => {
                        let (t, ni) = self.eval(i + 1, end, &[';']);
                        self.record_return(&t);
                        trailing = Taint::default();
                        i = ni;
                        continue;
                    }
                    "else" | "unsafe" | "async" | "move" => {
                        i += 1;
                        continue;
                    }
                    _ => {
                        // Plain assignment `x = …;` (not `==`, not `=>`).
                        if self.p(i + 1, '=') && !self.p(i + 2, '=') && !self.p(i + 2, '>') {
                            let line = self.line(i);
                            let (t, ni) = self.eval(i + 2, end, &[';']);
                            self.bind(&name, i, t, line);
                            trailing = Taint::default();
                            i = ni;
                            continue;
                        }
                        let (t, ni) = self.eval(i, end, &[';']);
                        trailing = t;
                        i = ni.max(i + 1);
                        continue;
                    }
                }
            }
            if self.p(i, ';') {
                trailing = Taint::default();
                i += 1;
                continue;
            }
            if self.p(i, '{') {
                let cb = self.match_brace(i, end);
                trailing = self.scan_stmts(i + 1, cb);
                i = cb + 1;
                continue;
            }
            if self.p(i, '#') && self.p(i + 1, '[') {
                i = self.matching(i + 1, end, '[', ']') + 1;
                continue;
            }
            i += 1;
        }
        trailing
    }

    /// Scan a loop body twice, so taint assigned late in one iteration is
    /// visible early in the next (the back-edge). Duplicate findings from
    /// the second scan collapse in the final sort+dedup.
    fn scan_loop_body(&mut self, start: usize, end: usize) {
        self.scan_stmts(start, end);
        self.scan_stmts(start, end);
    }

    /// Skip a nested `fn` item starting at the `fn` keyword.
    fn skip_fn(&self, i: usize, end: usize) -> usize {
        let mut j = i + 1;
        let mut paren = 0i32;
        while j < end {
            match self.lexed.tokens.get(j).map(|t| &t.tok) {
                Some(Tok::Punct('(')) => paren += 1,
                Some(Tok::Punct(')')) => paren -= 1,
                Some(Tok::Punct(';')) if paren == 0 => return j + 1,
                Some(Tok::Punct('{')) if paren == 0 => {
                    return self.match_brace(j, end) + 1;
                }
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// First `{` at paren/bracket depth 0 from `start`.
    fn find_body_brace(&self, start: usize, end: usize) -> usize {
        let mut j = start;
        let mut depth = 0i32;
        while j < end {
            if self.p(j, '(') || self.p(j, '[') {
                depth += 1;
            } else if self.p(j, ')') || self.p(j, ']') {
                depth -= 1;
            } else if self.p(j, '{') && depth <= 0 {
                return j;
            }
            j += 1;
        }
        end.saturating_sub(1)
    }

    /// `let PAT (: TYPE)? (= EXPR)? ;` — returns the index past the `;`.
    fn handle_let(&mut self, i: usize, end: usize) -> usize {
        let line = self.line(i);
        let mut j = i + 1;
        let mut binds: Vec<(String, usize)> = Vec::new();
        let mut depth = 0i32;
        let mut in_type = false;
        while j < end {
            if depth == 0 && self.p(j, '=') && !self.p(j + 1, '=') {
                break;
            }
            if depth == 0 && self.p(j, ';') {
                // `let x;` — bindings start clean.
                for (b, pos) in &binds.clone() {
                    self.bind(b, *pos, Taint::default(), line);
                }
                return j + 1;
            }
            if self.p(j, '(') || self.p(j, '[') || self.p(j, '{') {
                depth += 1;
            } else if self.p(j, ')') || self.p(j, ']') || self.p(j, '}') {
                depth -= 1;
            } else if depth == 0
                && self.p(j, ':')
                && !self.p(j + 1, ':')
                && !self.p(j.wrapping_sub(1), ':')
            {
                in_type = true;
            } else if !in_type {
                if let Some(n) = self.id(j) {
                    // `field: pat` in a struct pattern binds `pat`, not the
                    // field label to its left.
                    let field_label = self.p(j + 1, ':') && !self.p(j + 2, ':');
                    if is_var(n) && !matches!(n, "mut" | "ref" | "box") && !field_label {
                        binds.push((n.to_owned(), j));
                    }
                }
            }
            j += 1;
        }
        if j >= end {
            return end;
        }
        let (t, ni) = self.eval(j + 1, end, &[';']);
        for (b, pos) in binds {
            self.bind(&b, pos, t.clone(), line);
        }
        if self.p(ni, ';') {
            ni + 1
        } else {
            ni
        }
    }

    /// `if`/`while` (including `if let`): guard extraction, divergence-aware
    /// sanitization, body + else-chain. Returns (merged branch taint, next).
    /// `is_loop` double-scans the body for back-edge taint.
    fn handle_if(&mut self, i: usize, end: usize, is_loop: bool) -> (Taint, usize) {
        let ob = self.find_body_brace(i + 1, end);
        if !self.p(ob, '{') {
            return (Taint::default(), end);
        }
        let cb = self.match_brace(ob, end);
        if self.id(i + 1) == Some("let") {
            // `if let PAT = EXPR { .. }` — bind pattern vars to the
            // scrutinee's taint; no guard semantics.
            let mut eq = i + 2;
            let mut depth = 0i32;
            while eq < ob {
                if self.p(eq, '(') || self.p(eq, '[') || self.p(eq, '{') {
                    depth += 1;
                } else if self.p(eq, ')') || self.p(eq, ']') || self.p(eq, '}') {
                    depth -= 1;
                } else if depth == 0 && self.p(eq, '=') && !self.p(eq + 1, '=') {
                    break;
                }
                eq += 1;
            }
            let mut binds = Vec::new();
            for k in i + 2..eq {
                if let Some(n) = self.id(k) {
                    if is_var(n) && !matches!(n, "mut" | "ref") {
                        binds.push((n.to_owned(), k));
                    }
                }
            }
            let (t, _) = self.eval(eq + 1, ob, &['{']);
            let line = self.line(i);
            for (b, pos) in binds {
                self.bind(&b, pos, t.clone(), line);
            }
        } else {
            let guards = self.extract_guards(i + 1, ob);
            let diverges = self.region_diverges(ob + 1, cb);
            for (var, exceed) in guards {
                if exceed && diverges {
                    // `if n > MAX { return Err(..) }` — every token after the
                    // guard in the enclosing scope sees a bounded `n`.
                    self.sanitized.push((var, cb, end));
                } else if !exceed {
                    // `if n <= MAX { .. }` — bounded inside the body only.
                    self.sanitized.push((var, ob + 1, cb.saturating_sub(1)));
                }
            }
        }
        if is_loop {
            self.scan_stmts(ob + 1, cb);
        }
        let mut t = self.scan_stmts(ob + 1, cb);
        let mut j = cb + 1;
        if self.id(j) == Some("else") {
            if self.id(j + 1) == Some("if") {
                let (et, nj) = self.handle_if(j + 1, end, false);
                t = t.union(et);
                j = nj;
            } else if self.p(j + 1, '{') {
                let ecb = self.match_brace(j + 1, end);
                let et = self.scan_stmts(j + 2, ecb);
                t = t.union(et);
                j = ecb + 1;
            } else {
                j += 1;
            }
        }
        (t, j)
    }

    /// `var OP MAX_*` / `MAX_* OP var` comparisons in a condition region.
    /// Returns `(variable, exceed_direction)` pairs; exceed means the body
    /// runs when the variable is *too big* (`n > MAX`, `MAX < n`).
    fn extract_guards(&self, start: usize, end: usize) -> Vec<(String, bool)> {
        let mut out = Vec::new();
        for j in start..end {
            let gt = self.p(j, '>');
            let lt = self.p(j, '<');
            if !gt && !lt {
                continue;
            }
            let left = self.id(j.wrapping_sub(1)).map(str::to_owned);
            let r0 = if self.p(j + 1, '=') { j + 2 } else { j + 1 };
            // Walk a `limits::MAX_X` path down to its final segment.
            let mut rk = r0;
            while self.id(rk).is_some()
                && self.p(rk + 1, ':')
                && self.p(rk + 2, ':')
                && self.id(rk + 3).is_some()
            {
                rk += 3;
            }
            let right = self.id(rk).map(str::to_owned);
            match (left, right) {
                (Some(a), Some(b)) if is_var(&a) && is_guard_const(&b) => {
                    out.push((a, gt));
                }
                (Some(a), Some(b)) if is_guard_const(&a) && is_var(&b) => {
                    out.push((b, lt));
                }
                _ => {}
            }
        }
        out
    }

    /// `true` when the region contains a `return`/`break`/`continue` at any
    /// depth — a guard body that never falls through.
    fn region_diverges(&self, start: usize, end: usize) -> bool {
        (start..end).any(|k| matches!(self.id(k), Some("return" | "break" | "continue" | "panic")))
    }

    /// `for PAT in EXPR { .. }` — pattern vars inherit the iterable's taint.
    fn handle_for(&mut self, i: usize, end: usize) -> usize {
        let mut j = i + 1;
        let mut binds = Vec::new();
        while j < end && self.id(j) != Some("in") {
            if let Some(n) = self.id(j) {
                if is_var(n) && !matches!(n, "mut" | "ref") {
                    binds.push((n.to_owned(), j));
                }
            }
            j += 1;
        }
        let (t, ob) = self.eval(j + 1, end, &['{']);
        let line = self.line(i);
        for (b, pos) in binds {
            self.bind(&b, pos, t.clone(), line);
        }
        if !self.p(ob, '{') {
            return end;
        }
        let cb = self.match_brace(ob, end);
        self.scan_loop_body(ob + 1, cb);
        cb + 1
    }

    /// `match EXPR { arms }` — the scrutinee is evaluated, arms are scanned
    /// linearly (arm pattern bindings are not tracked; see module docs).
    fn handle_match(&mut self, i: usize, end: usize) -> (Taint, usize) {
        let (_, ob) = self.eval(i + 1, end, &['{']);
        if !self.p(ob, '{') {
            return (Taint::default(), end);
        }
        let cb = self.match_brace(ob, end);
        let t = self.scan_stmts(ob + 1, cb);
        (t, cb + 1)
    }

    /// Evaluate an expression region until a stop punct at depth 0 (or the
    /// region end); returns the union of all value-position taints and the
    /// index of the stopping token.
    fn eval(&mut self, start: usize, end: usize, stops: &[char]) -> (Taint, usize) {
        let header = stops.contains(&'{');
        let mut t = Taint::default();
        let mut i = start;
        let mut depth = 0i32;
        while i < end {
            match self.lexed.tokens.get(i).map(|s| &s.tok) {
                Some(Tok::Punct(c)) => {
                    let c = *c;
                    if depth == 0 && stops.contains(&c) {
                        break;
                    }
                    match c {
                        '(' | '[' => {
                            depth += 1;
                            i += 1;
                        }
                        ')' | ']' => {
                            if depth == 0 {
                                break;
                            }
                            depth -= 1;
                            i += 1;
                        }
                        '{' => {
                            let cb = self.match_brace(i, end);
                            let bt = self.scan_stmts(i + 1, cb);
                            t = t.union(bt);
                            i = cb + 1;
                        }
                        _ => i += 1,
                    }
                }
                Some(Tok::Ident(name)) => match name.as_str() {
                    "if" | "while" => {
                        let (bt, ni) = self.handle_if(i, end, name == "while");
                        t = t.union(bt);
                        i = ni.max(i + 1);
                    }
                    "match" => {
                        let (bt, ni) = self.handle_match(i, end);
                        t = t.union(bt);
                        i = ni.max(i + 1);
                    }
                    "for" => {
                        i = self.handle_for(i, end).max(i + 1);
                    }
                    "loop" => {
                        let ob = self.find_body_brace(i + 1, end);
                        let cb = self.match_brace(ob, end);
                        self.scan_loop_body(ob + 1, cb);
                        i = cb + 1;
                    }
                    "else" => {
                        if self.p(i + 1, '{') {
                            let cb = self.match_brace(i + 1, end);
                            let bt = self.scan_stmts(i + 2, cb);
                            t = t.union(bt);
                            i = cb + 1;
                        } else {
                            i += 1;
                        }
                    }
                    "return" | "break" | "continue" | "as" | "mut" | "ref" | "move" | "in"
                    | "dyn" | "let" | "unsafe" | "async" | "await" | "box" => i += 1,
                    _ => {
                        let (ct, ni) = self.eval_chain(i, end, header);
                        t = t.union(ct);
                        i = ni.max(i + 1);
                    }
                },
                Some(_) => i += 1, // literal / lifetime
                None => break,
            }
        }
        (t, i)
    }

    /// Evaluate one path/call/method/index chain starting at an identifier.
    fn eval_chain(&mut self, start: usize, end: usize, header: bool) -> (Taint, usize) {
        let mut i = start;
        let mut qual: Option<String> = None;
        let mut segs = 0usize;
        loop {
            let Some(name) = self.id(i) else {
                return (Taint::default(), i + 1);
            };
            if self.p(i + 1, '!') {
                return self.eval_macro(i, end);
            }
            if self.p(i + 1, ':') && self.p(i + 2, ':') {
                if self.id(i + 3).is_some() {
                    qual = Some(name.to_owned());
                    segs += 1;
                    i += 3;
                    continue;
                }
                if self.p(i + 3, '<') {
                    // Turbofish `name::<T>(…)`.
                    let close = self.matching(i + 3, end, '<', '>');
                    if self.p(close + 1, '(') {
                        let name = name.to_owned();
                        let line = self.line(i);
                        let (args, ni) = self.parse_args(close + 1, end);
                        let ct = self.call_taint(
                            &name,
                            qual.as_deref(),
                            false,
                            None,
                            false,
                            &args,
                            line,
                        );
                        return self.postfix(ct, ni, end, header, false);
                    }
                    return (Taint::default(), close + 1);
                }
            }
            break;
        }
        let name = self.id(i).unwrap_or_default().to_owned();
        let line = self.line(i);
        let recv_self = segs == 0 && name == "self";
        let (t, j) = if self.p(i + 1, '(') {
            let (args, ni) = self.parse_args(i + 1, end);
            (self.call_taint(&name, qual.as_deref(), false, None, false, &args, line), ni)
        } else if segs > 0 {
            // Qualified path value (`limits::MAX_RECORDS`, `OpKind::Read`).
            (Taint::default(), i + 1)
        } else if !header
            && self.p(i + 1, '{')
            && name.chars().next().is_some_and(|c| c.is_ascii_uppercase())
            && name.chars().any(|c| c.is_ascii_lowercase())
        {
            // Struct literal `TraceView { field: expr, .. }`.
            let cb = self.match_brace(i + 1, end);
            let (bt, _) = self.eval(i + 2, cb, &[]);
            (bt, cb + 1)
        } else {
            (self.lookup(&name, i), i + 1)
        };
        self.postfix(t, j, end, header, recv_self)
    }

    /// Postfix operators on an already-evaluated base: `?`, `.method(..)`,
    /// `.field`, calls, indexing, struct literals.
    fn postfix(
        &mut self,
        mut t: Taint,
        mut j: usize,
        end: usize,
        header: bool,
        mut recv_self: bool,
    ) -> (Taint, usize) {
        let _ = header;
        while j < end {
            if self.p(j, '?') {
                j += 1;
                continue;
            }
            if self.p(j, '.') {
                if self.p(j + 1, '.') {
                    // A range `a..b` — not part of the chain.
                    break;
                }
                if let Some(m) = self.id(j + 1).map(str::to_owned) {
                    if self.p(j + 2, '(') {
                        let mline = self.line(j + 1);
                        let (args, ni) = self.parse_args(j + 2, end);
                        t = self.call_taint(&m, None, true, Some(t), recv_self, &args, mline);
                        recv_self = false;
                        j = ni;
                        continue;
                    }
                    // Field access / `.await` — taint unchanged.
                    j += 2;
                    continue;
                }
                if matches!(self.lexed.tokens.get(j + 1).map(|s| &s.tok), Some(Tok::Literal)) {
                    j += 2; // tuple index
                    continue;
                }
                j += 1;
                continue;
            }
            if self.p(j, '(') {
                let (args, ni) = self.parse_args(j, end);
                for a in args {
                    t = t.union(a);
                }
                j = ni;
                continue;
            }
            if self.p(j, '[') {
                let close = self.matching(j, end, '[', ']');
                self.check_index(j, close);
                j = close + 1;
                continue;
            }
            break;
        }
        (t, j)
    }

    /// Evaluate a macro invocation. `vec![elem; n]` is an allocation sink on
    /// `n`; every other macro is a pass-through union of its arguments.
    fn eval_macro(&mut self, i: usize, end: usize) -> (Taint, usize) {
        let name = self.id(i).unwrap_or_default().to_owned();
        let line = self.line(i);
        let d = i + 2;
        if self.p(d, '[') {
            let close = self.matching(d, end, '[', ']');
            if name == "vec" {
                // Find the top-level `;` of `vec![elem; n]`.
                let mut k = d + 1;
                let mut depth = 0i32;
                while k < close {
                    if self.p(k, '(') || self.p(k, '[') || self.p(k, '{') {
                        depth += 1;
                    } else if self.p(k, ')') || self.p(k, ']') || self.p(k, '}') {
                        depth -= 1;
                    } else if depth == 0 && self.p(k, ';') {
                        let (lt, _) = self.eval(k + 1, close, &[]);
                        self.sink(line, "vec![..; n]", &lt);
                        let (_, _) = self.eval(d + 1, k, &[]);
                        return (Taint::default(), close + 1);
                    }
                    k += 1;
                }
            }
            let (t, _) = self.eval(d + 1, close, &[]);
            return (t, close + 1);
        }
        if self.p(d, '(') {
            let (args, ni) = self.parse_args(d, end);
            return (args.into_iter().fold(Taint::default(), Taint::union), ni);
        }
        if self.p(d, '{') {
            let close = self.match_brace(d, end);
            let (t, _) = self.eval(d + 1, close, &[]);
            return (t, close + 1);
        }
        (Taint::default(), d)
    }

    /// Slice-range bounds are sinks: `&data[..n]` materializes `n` bytes.
    fn check_index(&mut self, open: usize, close: usize) {
        let mut k = open + 1;
        let mut depth = 0i32;
        while k < close {
            if self.p(k, '(') || self.p(k, '[') || self.p(k, '{') {
                depth += 1;
            } else if self.p(k, ')') || self.p(k, ']') || self.p(k, '}') {
                depth -= 1;
            } else if depth == 0 && self.p(k, '.') && self.p(k + 1, '.') {
                let (lt, _) = self.eval(open + 1, k, &[]);
                let rstart = if self.p(k + 2, '=') { k + 3 } else { k + 2 };
                let (rt, _) = self.eval(rstart.min(close), close, &[]);
                self.sink(self.line(open), "slice-range bound", &lt.union(rt));
                return;
            }
            k += 1;
        }
        let (_, _) = self.eval(open + 1, close, &[]);
    }

    /// Evaluate a comma-separated argument list; `open` is at `(`.
    fn parse_args(&mut self, open: usize, end: usize) -> (Vec<Taint>, usize) {
        let close = self.matching(open, end, '(', ')');
        let mut args = Vec::new();
        let mut i = open + 1;
        while i < close {
            let (t, ni) = self.eval(i, close, &[',']);
            args.push(t);
            if ni >= close {
                break;
            }
            i = ni + 1;
        }
        (args, close + 1)
    }

    /// The abstract result of one call, applying (in order) sink detection,
    /// known-clean/clamping methods, wire-source seeding, and summary-based
    /// interprocedural propagation.
    #[allow(clippy::too_many_arguments)]
    fn call_taint(
        &mut self,
        name: &str,
        qual: Option<&str>,
        is_method: bool,
        recv: Option<Taint>,
        recv_self: bool,
        args: &[Taint],
        line: u32,
    ) -> Taint {
        if SINK_FNS.contains(&name) {
            for a in args {
                self.sink(line, name, a);
            }
            // A sized container is a collection, not a length.
            return Taint::default();
        }
        if is_method && CLEAN_METHODS.contains(&name) {
            return Taint::default();
        }
        if is_method && CLAMP_METHODS.contains(&name) {
            return args.iter().cloned().fold(Taint::default(), Taint::union);
        }
        if self.wire_file
            && (WIRE_FREE_FNS.contains(&name) || (is_method && WIRE_METHODS.contains(&name)))
        {
            return Taint {
                wire: Some(vec![format!("{}:{line} wire read `{name}`", self.rel)]),
                params: BTreeMap::new(),
            };
        }
        let site = CallSite {
            name: name.to_owned(),
            qual: qual.map(str::to_owned),
            is_method,
            recv_self,
            line,
        };
        let callees = self.graph.resolve_site(self.node, &site);
        if callees.is_empty() {
            // Unresolved (std, shims): conservatively a pass-through, so
            // `usize::try_from(n).unwrap_or(0)`-style conversions stay hot.
            let mut t = args.iter().cloned().fold(Taint::default(), Taint::union);
            if let Some(r) = recv {
                t = t.union(r);
            }
            return t;
        }
        let mut out = Taint::default();
        for c in callees {
            let label = self.graph.nodes[c].label();
            let s = self.summaries[c].clone();
            if out.wire.is_none() {
                if let Some(chain) = &s.returns_wire {
                    let mut ch = chain.clone();
                    ch.push(format!("{}:{line} returned by `{label}`", self.rel));
                    out.wire = Some(ch);
                }
            }
            for p in &s.returns_params {
                if let Some(at) = args.get(*p) {
                    let mut at = at.clone();
                    if let Some(ch) = &mut at.wire {
                        ch.push(format!("{}:{line} passes through `{label}`", self.rel));
                    }
                    out = out.union(at);
                }
            }
            for (p, sink_chain) in &s.sink_params {
                let Some(at) = args.get(*p) else { continue };
                if let Some(argch) = &at.wire {
                    if self.emit {
                        let mut full = argch.clone();
                        full.push(format!("{}:{line} passed to `{label}`", self.rel));
                        full.extend(sink_chain.iter().cloned());
                        self.findings.push(TaintFinding {
                            rel: self.rel.to_owned(),
                            line,
                            message: format!(
                                "a wire-read value reaches an allocation inside `{label}` \
                                 with no dominating `MAX_*` guard; taint path: {}; compare \
                                 the length against a named `limits::MAX_*` bound before \
                                 allocating, or justify with `lint: allow(taint, \"...\")`",
                                full.join(" -> ")
                            ),
                        });
                    }
                }
                for (pp, pchain) in &at.params {
                    let mut full = pchain.clone();
                    full.push(format!("{}:{line} passed to `{label}`", self.rel));
                    full.extend(sink_chain.iter().cloned());
                    self.my.sink_params.entry(*pp).or_insert(full);
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// L9 — guard-set parity
// ---------------------------------------------------------------------------

/// Run the L9 pass: per-directory, the `mdf.rs`/`view.rs` parser pair must
/// compare against the same `MAX_*` constants, and every guard constant used
/// by a parser must be declared in the sibling `limits.rs`.
pub(crate) fn check_guard_parity(files: &[(&str, &Lexed)]) -> Vec<TaintFinding> {
    let mut by_dir: BTreeMap<&str, BTreeMap<&str, &Lexed>> = BTreeMap::new();
    for (rel, lx) in files {
        let (dir, base) = rel.rsplit_once('/').unwrap_or(("", rel));
        if matches!(base, "mdf.rs" | "view.rs" | "dxt.rs" | "limits.rs") {
            by_dir.entry(dir).or_default().insert(base, lx);
        }
    }
    let join = |dir: &str, base: &str| {
        if dir.is_empty() {
            base.to_owned()
        } else {
            format!("{dir}/{base}")
        }
    };
    let mut out = Vec::new();
    for (dir, members) in &by_dir {
        let uses: BTreeMap<&str, BTreeMap<String, u32>> = members
            .iter()
            .filter(|(b, _)| WIRE_FILE_BASENAMES.contains(*b))
            .map(|(b, lx)| (*b, guard_uses(lx)))
            .collect();
        if let (Some(m), Some(v)) = (uses.get("mdf.rs"), uses.get("view.rs")) {
            for (c, line) in m {
                if !v.contains_key(c) {
                    out.push(TaintFinding {
                        rel: join(dir, "view.rs"),
                        line: 1,
                        message: format!(
                            "guard-set drift: the owned parser compares against `{c}` \
                             ({}:{line}) but the borrowed parser never does; the twin MDF \
                             parsers must enforce one `MAX_*` guard set",
                            join(dir, "mdf.rs")
                        ),
                    });
                }
            }
            for (c, line) in v {
                if !m.contains_key(c) {
                    out.push(TaintFinding {
                        rel: join(dir, "mdf.rs"),
                        line: 1,
                        message: format!(
                            "guard-set drift: the borrowed parser compares against `{c}` \
                             ({}:{line}) but the owned parser never does; the twin MDF \
                             parsers must enforce one `MAX_*` guard set",
                            join(dir, "view.rs")
                        ),
                    });
                }
            }
        }
        if let Some(lim) = members.get("limits.rs") {
            let declared = declared_guard_consts(lim);
            for (base, us) in &uses {
                for (c, line) in us {
                    if !declared.contains(c) {
                        out.push(TaintFinding {
                            rel: join(dir, base),
                            line: *line,
                            message: format!(
                                "guard constant `{c}` is not declared in `{}`; \
                                 decompression-bomb bounds must live in the shared `limits` \
                                 module so both parsers anchor to one definition",
                                join(dir, "limits.rs")
                            ),
                        });
                    }
                }
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

/// `MAX_*` constants a file compares against (or clamps with), mapped to the
/// first line of use. Declarations, imports and test code do not count —
/// only a comparison context proves the parser *enforces* the bound.
fn guard_uses(lexed: &Lexed) -> BTreeMap<String, u32> {
    let tests = test_line_ranges(lexed);
    let mut out = BTreeMap::new();
    let toks = &lexed.tokens;
    for (i, tok) in toks.iter().enumerate() {
        let Some(name) = lexed.ident(i) else { continue };
        if !is_guard_const(name) || in_ranges(&tests, tok.line) {
            continue;
        }
        if lexed.ident(i.wrapping_sub(1)) == Some("const") {
            continue;
        }
        // Walk back over a `limits::MAX_X` path to the token left of it.
        let mut j = i;
        while j >= 3
            && lexed.is_punct(j - 1, ':')
            && lexed.is_punct(j - 2, ':')
            && lexed.ident(j - 3).is_some()
        {
            j -= 3;
        }
        let left_cmp = lexed.is_punct(j.wrapping_sub(1), '<')
            || lexed.is_punct(j.wrapping_sub(1), '>')
            || (lexed.is_punct(j.wrapping_sub(1), '=')
                && (lexed.is_punct(j.wrapping_sub(2), '<')
                    || lexed.is_punct(j.wrapping_sub(2), '>')));
        let right_cmp = lexed.is_punct(i + 1, '<') || lexed.is_punct(i + 1, '>');
        let clamp_arg = lexed.is_punct(j.wrapping_sub(1), '(')
            && matches!(lexed.ident(j.wrapping_sub(2)), Some("min" | "clamp"))
            && lexed.is_punct(j.wrapping_sub(3), '.');
        if left_cmp || right_cmp || clamp_arg {
            out.entry(name.to_owned()).or_insert(toks[i].line);
        }
    }
    out
}

/// `MAX_*` constants declared (`const MAX_X: …`) in a `limits.rs`.
fn declared_guard_consts(lexed: &Lexed) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for i in 0..lexed.tokens.len() {
        if lexed.ident(i) == Some("const") {
            if let Some(name) = lexed.ident(i + 1) {
                if is_guard_const(name) {
                    out.insert(name.to_owned());
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;
    use crate::parse::{parse_file, ParsedFile};

    /// Lex+parse a set of files, build the call graph, run L8.
    fn run_l8(files: &[(&str, &str)]) -> Vec<TaintFinding> {
        let lexed: Vec<Lexed> = files.iter().map(|(_, s)| lex(s)).collect();
        let parsed: Vec<ParsedFile> =
            lexed.iter().map(|l| parse_file(l, &test_line_ranges(l))).collect();
        let graph_input: Vec<(&str, &ParsedFile)> =
            files.iter().zip(&parsed).map(|((r, _), p)| (*r, p)).collect();
        let graph = CallGraph::build(&graph_input);
        let map: BTreeMap<&str, &Lexed> =
            files.iter().zip(&lexed).map(|((r, _), l)| (*r, l)).collect();
        check_wire_taint(&graph, &map)
    }

    fn run_l9(files: &[(&str, &str)]) -> Vec<TaintFinding> {
        let lexed: Vec<Lexed> = files.iter().map(|(_, s)| lex(s)).collect();
        let inputs: Vec<(&str, &Lexed)> =
            files.iter().zip(&lexed).map(|((r, _), l)| (*r, l)).collect();
        check_guard_parity(&inputs)
    }

    const MDF: &str = "crates/x/src/mdf.rs";

    #[test]
    fn unguarded_with_capacity_is_flagged_with_full_path() {
        let src = "\
pub fn from_bytes(buf: &[u8]) {
    let n = get_u32(buf, \"count\");
    let v: Vec<u8> = Vec::with_capacity(n);
    drop(v);
}
";
        let f = run_l8(&[(MDF, src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
        assert!(f[0].message.contains("wire read `get_u32`"), "{}", f[0].message);
        assert!(f[0].message.contains("`let n`"), "{}", f[0].message);
        assert!(f[0].message.contains("sizes `with_capacity`"), "{}", f[0].message);
    }

    #[test]
    fn exceed_guard_with_divergence_dominates_the_sink() {
        let src = "\
pub fn from_bytes(buf: &[u8]) {
    let n = get_u32(buf, \"count\");
    if n > MAX_RECORDS {
        return;
    }
    let v: Vec<u8> = Vec::with_capacity(n);
    drop(v);
}
";
        assert!(run_l8(&[(MDF, src)]).is_empty());
    }

    #[test]
    fn rebind_after_guard_stays_clean() {
        // The canonical parser shape: guard the u32, then shadow it with the
        // usize conversion and allocate.
        let src = "\
pub fn from_bytes(buf: &[u8]) {
    let n = get_u32(buf, \"count\");
    if n > limits::MAX_RECORDS {
        return;
    }
    let n = u32_to_usize(n);
    let v: Vec<u8> = Vec::with_capacity(n);
    drop(v);
}
";
        assert!(run_l8(&[(MDF, src)]).is_empty());
    }

    #[test]
    fn within_guard_only_covers_its_body() {
        let src = "\
pub fn from_bytes(buf: &[u8]) {
    let n = get_u32(buf, \"count\");
    if n <= MAX_RECORDS {
        let ok: Vec<u8> = Vec::with_capacity(n);
        drop(ok);
    }
    let bad: Vec<u8> = Vec::with_capacity(n);
    drop(bad);
}
";
        let f = run_l8(&[(MDF, src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 7, "{f:?}");
    }

    #[test]
    fn guard_on_wrong_branch_does_not_dominate() {
        // The guard body does not diverge, so control falls through to the
        // allocation with n unchecked on the not-taken path.
        let src = "\
pub fn from_bytes(buf: &[u8]) {
    let n = get_u32(buf, \"count\");
    if n > MAX_RECORDS {
        log_oversize(n);
    }
    let v: Vec<u8> = Vec::with_capacity(n);
    drop(v);
}
";
        let f = run_l8(&[(MDF, src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
    }

    #[test]
    fn two_hop_taint_through_a_returning_helper() {
        let src = "\
fn read_len(buf: &[u8]) -> u32 {
    get_u32(buf, \"len\")
}
pub fn from_bytes(buf: &[u8]) {
    let n = read_len(buf);
    let v: Vec<u8> = Vec::with_capacity(n);
    drop(v);
}
";
        let f = run_l8(&[(MDF, src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6);
        assert!(f[0].message.contains("returned by `mdf::read_len`"), "{}", f[0].message);
    }

    #[test]
    fn taint_flows_into_a_sinking_helper() {
        let src = "\
fn alloc_for(n: u32) -> Vec<u8> {
    Vec::with_capacity(n)
}
pub fn from_bytes(buf: &[u8]) {
    let n = get_u32(buf, \"len\");
    let v = alloc_for(n);
    drop(v);
}
";
        let f = run_l8(&[(MDF, src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 6, "{f:?}");
        assert!(f[0].message.contains("passed to `mdf::alloc_for`"), "{}", f[0].message);
        assert!(f[0].message.contains("parameter `n`"), "{}", f[0].message);
    }

    #[test]
    fn guarded_argument_to_a_sinking_helper_is_clean() {
        let src = "\
fn alloc_for(n: u32) -> Vec<u8> {
    Vec::with_capacity(n)
}
pub fn from_bytes(buf: &[u8]) {
    let n = get_u32(buf, \"len\");
    if n > MAX_RECORDS {
        return;
    }
    let v = alloc_for(n);
    drop(v);
}
";
        assert!(run_l8(&[(MDF, src)]).is_empty());
    }

    #[test]
    fn vec_macro_length_is_a_sink() {
        let src = "\
pub fn from_bytes(buf: &[u8]) {
    let n = get_u32(buf, \"len\");
    let v = vec![0u8; n];
    drop(v);
}
";
        let f = run_l8(&[(MDF, src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("vec![..; n]"), "{}", f[0].message);
    }

    #[test]
    fn slice_range_bound_is_a_sink() {
        let src = "\
pub fn from_bytes(buf: &[u8]) {
    let n = get_u32(buf, \"len\");
    let s = &buf[..n];
    drop(s);
}
";
        let f = run_l8(&[(MDF, src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("slice-range bound"), "{}", f[0].message);
    }

    #[test]
    fn min_clamp_against_a_guard_const_launders() {
        let src = "\
pub fn from_bytes(buf: &[u8]) {
    let n = get_u32(buf, \"len\");
    let v: Vec<u8> = Vec::with_capacity(n.min(MAX_RECORDS));
    drop(v);
}
";
        assert!(run_l8(&[(MDF, src)]).is_empty());
    }

    #[test]
    fn cursor_method_reads_seed_taint() {
        let src = "\
pub fn parse(cur: &mut Cursor) {
    let n = cur.u32(\"count\");
    let v: Vec<u8> = Vec::with_capacity(n);
    drop(v);
}
";
        let f = run_l8(&[("crates/x/src/view.rs", src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("wire read `u32`"), "{}", f[0].message);
    }

    #[test]
    fn non_parser_files_do_not_seed_taint() {
        let src = "\
pub fn not_a_parser(buf: &[u8]) {
    let n = get_u32(buf, \"len\");
    let v: Vec<u8> = Vec::with_capacity(n);
    drop(v);
}
";
        assert!(run_l8(&[("crates/x/src/other.rs", src)]).is_empty());
    }

    #[test]
    fn test_functions_are_exempt() {
        let src = "\
#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        let n = get_u32(b\"\", \"len\");
        let v: Vec<u8> = Vec::with_capacity(n);
        drop(v);
    }
}
";
        assert!(run_l8(&[(MDF, src)]).is_empty());
    }

    #[test]
    fn loop_carried_taint_is_observed() {
        // `n` is only tainted on the second iteration; the two-pass body
        // walk must still see it reach the sink.
        let src = "\
pub fn from_bytes(buf: &[u8]) {
    let mut n = 0;
    loop {
        let v: Vec<u8> = Vec::with_capacity(n);
        drop(v);
        n = get_u32(buf, \"len\");
    }
}
";
        let f = run_l8(&[(MDF, src)]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn guard_parity_flags_drift_in_both_directions() {
        let mdf = "\
pub fn from_bytes(n: u32) {
    if n > MAX_RECORDS { return; }
    if n > MAX_NAMES { return; }
}
";
        let view = "\
pub fn parse(n: u32) {
    if n > MAX_RECORDS { return; }
    if n > MAX_EXE_LEN { return; }
}
";
        let f = run_l9(&[("crates/x/src/mdf.rs", mdf), ("crates/x/src/view.rs", view)]);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f[0].rel.ends_with("mdf.rs") && f[0].message.contains("`MAX_EXE_LEN`"));
        assert!(f[1].rel.ends_with("view.rs") && f[1].message.contains("`MAX_NAMES`"));
    }

    #[test]
    fn guard_parity_is_quiet_when_in_sync() {
        let both = "\
pub fn f(n: u32) {
    if n > MAX_RECORDS { return; }
    if limits::MAX_NAMES < n { return; }
}
";
        assert!(run_l9(&[("crates/x/src/mdf.rs", both), ("crates/x/src/view.rs", both)]).is_empty());
    }

    #[test]
    fn guard_consts_must_anchor_in_limits() {
        let mdf = "pub fn f(n: u32) { if n > MAX_ROGUE { return; } }\n";
        let view = "pub fn f(n: u32) { if n > MAX_ROGUE { return; } }\n";
        let limits = "pub const MAX_RECORDS: u32 = 1;\n";
        let f = run_l9(&[
            ("crates/x/src/mdf.rs", mdf),
            ("crates/x/src/view.rs", view),
            ("crates/x/src/limits.rs", limits),
        ]);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|t| t.message.contains("`MAX_ROGUE`")));
        assert!(f.iter().all(|t| t.message.contains("limits.rs")));
    }

    #[test]
    fn imports_and_declarations_are_not_guard_uses() {
        let mdf = "\
pub use crate::limits::{MAX_EXE_LEN, MAX_NAMES, MAX_RECORDS};
const MAX_LOCAL: u32 = 9;
pub fn f(n: u32) { if n > MAX_RECORDS { return; } }
";
        let view = "pub fn f(n: u32) { if n > MAX_RECORDS { return; } }\n";
        assert!(run_l9(&[("crates/x/src/mdf.rs", mdf), ("crates/x/src/view.rs", view)]).is_empty());
    }
}
