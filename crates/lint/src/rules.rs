//! The Mosaic-specific invariant rules (L2–L11) and the escape hatch.
//!
//! Scopes are explicit and named next to the rules they parameterize: the
//! untrusted-input *entry points* the call graph is walked from (L5), the
//! crates whose state feeds `ResultSnapshot` digests (L2), the
//! parse/merge/categorize paths where a lossy cast corrupts category
//! counts (L6), and the crates holding the (duration, volume) feature
//! math (L7). L5 is semantic: instead of a per-file allowlist it walks
//! the workspace call graph from the entry points, so a panic two call
//! hops below `from_bytes` is found — and reported with its call path.

use crate::findings::{Finding, Report, Rule};
use crate::graph::CallGraph;
use crate::lex::{in_ranges, lex, test_line_ranges, Lexed, Tok};
use crate::parse::{parse_file, ParsedFile};
use std::collections::BTreeMap;

/// One input file: workspace-relative path (forward slashes) plus contents.
#[derive(Debug, Clone)]
pub struct FileInput {
    /// Workspace-relative path, e.g. `crates/darshan/src/mdf.rs`.
    pub rel: String,
    /// Full source text.
    pub text: String,
}

/// L5 entry points — the functions through which untrusted or
/// externally-sourced bytes enter the system: the darshan parsers and
/// validator surface, and the pipeline drivers every hostile trace flows
/// through. Everything *reachable* from these over the workspace call
/// graph must be panic-free; a crafted MDF file must surface as a typed
/// `Err`, never as a crash at 462k-trace scale. If one of these is
/// renamed, the missing root is itself a finding.
const L5_ROOTS: &[(&str, &str)] = &[
    ("crates/darshan/src/mdf.rs", "from_bytes"),
    ("crates/darshan/src/dxt.rs", "from_bytes"),
    ("crates/darshan/src/text.rs", "parse"),
    ("crates/darshan/src/validate.rs", "validate"),
    ("crates/darshan/src/validate.rs", "sanitize"),
    ("crates/darshan/src/validate.rs", "check_record"),
    ("crates/darshan/src/validate.rs", "check_header"),
    ("crates/darshan/src/validate.rs", "delete_invalid"),
    ("crates/darshan/src/view.rs", "parse"),
    ("crates/darshan/src/view.rs", "validate_view"),
    ("crates/pipeline/src/source.rs", "fetch"),
    ("crates/pipeline/src/executor.rs", "process"),
    ("crates/pipeline/src/executor.rs", "ingest_one"),
    ("crates/pipeline/src/incremental.rs", "ingest"),
    ("crates/pipeline/src/incremental.rs", "ingest_fetched"),
];

/// Crates exempt from L2 — their output never feeds a `ResultSnapshot`
/// digest (CLI presentation, benchmarks, the linter itself, test glue).
const L2_EXEMPT_CRATES: &[&str] = &["cli", "bench", "lint", "integration", "examples"];

/// L6 scope — the parse/merge/categorize paths where a silently wrapping
/// cast corrupts offsets, record counts, or interval math.
const L6_SCOPE: &[&str] = &["crates/darshan/src/", "crates/pipeline/src/", "crates/core/src/"];

/// Cast targets L6 flags: every `as` to one of these can truncate, wrap,
/// change sign, or (for `f32`) round. `as f64` is exempt — it is exact for
/// every integer the formats can carry below 2^53, and the feature space
/// log-scales immediately afterwards anyway.
const LOSSY_CAST_TARGETS: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
];

/// L7 scope — everywhere the (duration, volume) feature axes live.
const L7_SCOPE: &[&str] =
    &["crates/darshan/src/", "crates/pipeline/src/", "crates/core/src/", "crates/clustering/src/"];

/// Identifier words that mark a seconds/duration quantity (L7).
const TIME_WORDS: &[&str] = &[
    "secs",
    "sec",
    "seconds",
    "second",
    "duration",
    "durations",
    "elapsed",
    "runtime",
    "time",
    "times",
    "timestamp",
    "timestamps",
    "start",
    "end",
    "gap",
    "gaps",
    "period",
    "periods",
];

/// Identifier words that mark a byte-volume quantity (L7).
const VOL_WORDS: &[&str] =
    &["bytes", "byte", "volume", "volumes", "vol", "size", "sizes", "offset", "offsets", "nbytes"];

/// Method calls that panic on the error/none case.
const PANIC_METHODS: &[&str] = &["unwrap", "expect", "unwrap_err", "expect_err"];

/// Macros that unconditionally panic when reached.
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Identifiers that legitimately precede a `[` without it being an index
/// expression (`for x in [..]`, `match [..]`, array-type positions, …).
const NON_INDEX_PREV: &[&str] = &[
    "in", "return", "if", "else", "match", "break", "continue", "loop", "while", "for", "let",
    "mut", "ref", "as", "move", "await", "async", "dyn", "box", "yield", "where", "impl", "use",
    "pub", "mod", "fn", "struct", "enum", "trait", "type", "const", "static", "unsafe", "crate",
    "super", "self", "Self",
];

/// The error taxonomy under rule L4.
const TAXONOMY_FILE: &str = "crates/darshan/src/error.rs";
const TAXONOMY_ENUM: &str = "EvictReason";
/// The accounting functions every variant must appear in: `class` decides
/// which coarse funnel counter an eviction rolls into (and therefore where
/// `by_reason` entries land), `slug` names its stable JSON key.
const TAXONOMY_FNS: &[&str] = &["class", "slug"];

/// A well-formed `lint: allow(<key>, "<justification>")` escape hatch.
#[derive(Debug)]
struct Allow {
    line: u32,
    key: String,
}

/// One lexed input plus the per-file facts the rules share: its test-code
/// line ranges, its well-formed escape hatches, and its parsed items.
struct Prepared {
    idx: usize,
    lexed: Lexed,
    tests: Vec<(u32, u32)>,
    allows: Vec<Allow>,
    parsed: ParsedFile,
}

/// Lint a set of in-memory files as one workspace. This is the whole
/// linter; `scan_workspace` merely reads files off disk and calls it.
pub fn lint_files(files: &[FileInput]) -> Report {
    let mut report = Report { findings: Vec::new(), files_scanned: files.len() };
    let mut prepared: Vec<Prepared> = Vec::new();

    for (idx, file) in files.iter().enumerate() {
        let lexed = lex(&file.text);
        let tests = test_line_ranges(&lexed);
        let allows = parse_allows(&file.rel, &lexed, &mut report.findings);
        let parsed = parse_file(&lexed, &tests);
        prepared.push(Prepared { idx, lexed, tests, allows, parsed });
    }

    // Suppressible findings accumulate per source file, then the escape
    // hatch is applied once with usage tracking (for `unused-allow`).
    let mut raw: Vec<Vec<Finding>> = (0..files.len()).map(|_| Vec::new()).collect();
    for p in &prepared {
        let rel = &files[p.idx].rel;
        if l2_in_scope(rel) {
            check_determinism(rel, &p.lexed, &p.tests, &mut raw[p.idx]);
        }
        check_unsafe_tokens(rel, &p.lexed, &p.tests, &mut raw[p.idx]);
        if in_prefixes(rel, L6_SCOPE) {
            check_lossy_casts(rel, &p.lexed, &p.tests, &mut raw[p.idx]);
        }
        if in_prefixes(rel, L7_SCOPE) {
            check_unit_mixing(rel, &p.lexed, &p.tests, &mut raw[p.idx]);
        }
    }

    check_panic_reachability(files, &prepared, &mut raw, &mut report.findings);
    check_wire_taint_rule(files, &prepared, &mut raw);
    check_sync_rules(files, &prepared, &mut raw);

    for p in &prepared {
        let rel = &files[p.idx].rel;
        let mut used = vec![false; p.allows.len()];
        raw[p.idx].retain(|f| match allow_index(f, &p.allows) {
            Some(a) => {
                used[a] = true;
                false
            }
            None => true,
        });
        report.findings.append(&mut raw[p.idx]);
        for (a, allow) in p.allows.iter().enumerate() {
            if !used[a] {
                report.findings.push(Finding {
                    rule: Rule::UnusedAllow,
                    file: rel.clone(),
                    line: allow.line,
                    message: format!(
                        "`lint: allow({}, ...)` no longer suppresses any finding here; \
                         delete the stale escape hatch so the audit trail stays honest",
                        allow.key
                    ),
                });
            }
        }
    }

    check_crate_roots(files, &prepared, &mut report.findings);
    check_taxonomy(files, &prepared, &mut report.findings);
    check_guard_parity_rule(files, &prepared, &mut report.findings);

    report.normalize();
    report
}

/// L8: run the interprocedural wire-taint pass over the same production
/// call graph L5 uses. Findings are suppressible per-site via
/// `lint: allow(taint, "<proof>")`, so they land in the per-file `raw`
/// buckets rather than going straight to the report.
fn check_wire_taint_rule(files: &[FileInput], prepared: &[Prepared], raw: &mut [Vec<Finding>]) {
    let graph_files: Vec<(&str, &ParsedFile)> = prepared
        .iter()
        .filter(|p| graph_scope(&files[p.idx].rel))
        .map(|p| (files[p.idx].rel.as_str(), &p.parsed))
        .collect();
    let graph = CallGraph::build(&graph_files);
    let lexed_by_rel: BTreeMap<&str, &Lexed> = prepared
        .iter()
        .filter(|p| graph_scope(&files[p.idx].rel))
        .map(|p| (files[p.idx].rel.as_str(), &p.lexed))
        .collect();
    let by_rel: BTreeMap<&str, usize> =
        files.iter().enumerate().map(|(i, f)| (f.rel.as_str(), i)).collect();
    for t in crate::dataflow::check_wire_taint(&graph, &lexed_by_rel) {
        let Some(&pidx) = by_rel.get(t.rel.as_str()) else { continue };
        raw[pidx].push(Finding {
            rule: Rule::WireTaint,
            file: t.rel,
            line: t.line,
            message: t.message,
        });
    }
}

/// L10/L11: the concurrency-protocol pass. Unlike the L5/L8 call-graph
/// rules this scans *every* input file — the `shims/rayon` pool and the
/// test-support crates hold locks and atomics too, and a deadlock there
/// wedges CI just as hard. Findings are suppressible per-site via
/// `lint: allow(sync, "<proof>")`.
fn check_sync_rules(files: &[FileInput], prepared: &[Prepared], raw: &mut [Vec<Finding>]) {
    let inputs: Vec<crate::sync::SyncInput<'_>> = prepared
        .iter()
        .map(|p| crate::sync::SyncInput {
            rel: files[p.idx].rel.as_str(),
            lexed: &p.lexed,
            tests: &p.tests,
            parsed: &p.parsed,
        })
        .collect();
    let by_rel: BTreeMap<&str, usize> =
        files.iter().enumerate().map(|(i, f)| (f.rel.as_str(), i)).collect();
    for t in crate::sync::check_sync(&inputs) {
        let Some(&pidx) = by_rel.get(t.rel.as_str()) else { continue };
        let rule = match t.rule {
            crate::sync::SyncRule::Atomics => Rule::AtomicsDiscipline,
            crate::sync::SyncRule::Locks => Rule::LockDiscipline,
        };
        raw[pidx].push(Finding { rule, file: t.rel, line: t.line, message: t.message });
    }
}

/// The `--sync-report` artifact over the same inputs `lint_files` sees:
/// the atomic/lock inventory and the lock-acquisition-order graph.
pub fn sync_report_json(files: &[FileInput]) -> String {
    let prepared: Vec<(String, Lexed)> =
        files.iter().map(|f| (f.rel.clone(), lex(&f.text))).collect();
    let staged: Vec<(Vec<(u32, u32)>, ParsedFile)> = prepared
        .iter()
        .map(|(_, lexed)| {
            let tests = test_line_ranges(lexed);
            let parsed = parse_file(lexed, &tests);
            (tests, parsed)
        })
        .collect();
    let inputs: Vec<crate::sync::SyncInput<'_>> = prepared
        .iter()
        .zip(&staged)
        .map(|((rel, lexed), (tests, parsed))| crate::sync::SyncInput { rel, lexed, tests, parsed })
        .collect();
    crate::sync::report_json(&inputs)
}

/// L9: guard-set parity between the owned and borrowed parsers, plus the
/// `limits.rs` anchoring check. Structural — no per-line escape hatch.
fn check_guard_parity_rule(files: &[FileInput], prepared: &[Prepared], out: &mut Vec<Finding>) {
    let inputs: Vec<(&str, &Lexed)> =
        prepared.iter().map(|p| (files[p.idx].rel.as_str(), &p.lexed)).collect();
    for t in crate::dataflow::check_guard_parity(&inputs) {
        out.push(Finding {
            rule: Rule::GuardParity,
            file: t.rel,
            line: t.line,
            message: t.message,
        });
    }
}

/// `true` when `rel` starts with any of the given path prefixes.
fn in_prefixes(rel: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p))
}

/// `true` when `rel` belongs to a crate whose state feeds snapshot digests.
fn l2_in_scope(rel: &str) -> bool {
    match crate_of(rel) {
        Some(name) => !L2_EXEMPT_CRATES.contains(&name),
        None => false,
    }
}

/// Crates that participate in the L5 call graph: the crates holding the
/// [`L5_ROOTS`] (`darshan`, `pipeline`) plus their transitive workspace
/// dependencies per `Cargo.toml` (`pipeline` → `core` + `obs`, `core` →
/// `clustering` + `signal`). Crates outside this closure — `bench`,
/// `synth`, `verify`, `lint`, `cli`, … — can never be linked into a
/// parse/ingest code path, so including them would only let the graph's
/// over-approximate method resolution invent false edges.
const L5_CRATES: &[&str] = &["clustering", "core", "darshan", "obs", "pipeline", "signal"];

/// Files that participate in the L5 call graph: production sources of the
/// crates in the roots' dependency closure.
fn graph_scope(rel: &str) -> bool {
    rel.contains("/src/") && matches!(crate_of(rel), Some(k) if L5_CRATES.contains(&k))
}

/// The crate a path belongs to: `crates/<name>/…` or the `examples` package.
fn crate_of(rel: &str) -> Option<&str> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        return rest.split('/').next();
    }
    if rel.starts_with("examples/") {
        return Some("examples");
    }
    None
}

/// Index of the first allow that suppresses `f`, if any: same key, same or
/// immediately preceding line.
fn allow_index(f: &Finding, allows: &[Allow]) -> Option<usize> {
    let key = f.rule.allow_key()?;
    allows.iter().position(|a| a.key == key && (a.line == f.line || a.line + 1 == f.line))
}

/// Parse every `lint: allow` directive; malformed ones (bad key, missing
/// or empty justification) become findings so the escape hatch stays
/// honest. Only comments that *begin* with `lint:` are directives — prose
/// that merely mentions the syntax (like this doc comment) is not.
fn parse_allows(rel: &str, lexed: &Lexed, findings: &mut Vec<Finding>) -> Vec<Allow> {
    let mut allows = Vec::new();
    for (line, text) in &lexed.comments {
        // Comment text starts after `//`; shave doc-comment markers.
        let body = text.trim_start_matches(['/', '!']).trim_start();
        let Some(rest) = body.strip_prefix("lint:") else { continue };
        let rest = rest.trim_start();
        let mut fail = |why: &str| {
            findings.push(Finding {
                rule: Rule::MalformedAllow,
                file: rel.to_owned(),
                line: *line,
                message: format!("malformed `lint: allow` escape hatch: {why}"),
            });
        };
        let Some(args) = rest.strip_prefix("allow") else {
            fail("expected `allow(<rule>, \"<justification>\")` after `lint:`");
            continue;
        };
        let args = args.trim_start();
        let Some(inner) = args.strip_prefix('(').and_then(|a| a.rfind(')').map(|e| &a[..e])) else {
            fail("missing parenthesized arguments");
            continue;
        };
        let Some((key, just)) = inner.split_once(',') else {
            fail("missing justification — write `allow(<rule>, \"why this is safe\")`");
            continue;
        };
        let key = key.trim();
        if !matches!(
            key,
            "panic" | "nondeterminism" | "unsafe" | "cast" | "unit" | "taint" | "sync"
        ) {
            fail(&format!(
                "unknown rule {key:?}; expected `panic`, `nondeterminism`, `unsafe`, \
                 `cast`, `unit`, `taint` or `sync`"
            ));
            continue;
        }
        let just = just.trim();
        let justification = just.strip_prefix('"').and_then(|j| j.strip_suffix('"')).map(str::trim);
        match justification {
            Some(j) if !j.is_empty() => {
                allows.push(Allow { line: *line, key: key.to_owned() });
            }
            Some(_) => fail("empty justification string"),
            None => fail("justification must be a double-quoted string"),
        }
    }
    allows
}

/// L5: walk the workspace call graph from the untrusted-input entry points
/// and flag every panic site (`unwrap`/`expect`, panicking macros, slice
/// indexing) in any reached function, reporting the call path. A root
/// listed in [`L5_ROOTS`] whose file is present but whose fn is missing is
/// itself a finding, so the roots list cannot silently rot.
fn check_panic_reachability(
    files: &[FileInput],
    prepared: &[Prepared],
    raw: &mut [Vec<Finding>],
    structural: &mut Vec<Finding>,
) {
    let graph_files: Vec<(&str, &ParsedFile)> = prepared
        .iter()
        .filter(|p| graph_scope(&files[p.idx].rel))
        .map(|p| (files[p.idx].rel.as_str(), &p.parsed))
        .collect();
    let graph = CallGraph::build(&graph_files);

    let mut roots = Vec::new();
    for (file, name) in L5_ROOTS {
        let mut found = false;
        for (i, n) in graph.nodes.iter().enumerate() {
            if n.rel == *file && n.f.name == *name {
                roots.push(i);
                found = true;
            }
        }
        if !found && files.iter().any(|f| f.rel == *file) {
            structural.push(Finding {
                rule: Rule::PanicReachability,
                file: (*file).to_owned(),
                line: 1,
                message: format!(
                    "L5 entry point `{name}` not found in this file — if it was renamed, \
                     update the roots list in crates/lint/src/rules.rs"
                ),
            });
        }
    }

    let by_rel: BTreeMap<&str, usize> =
        files.iter().enumerate().map(|(i, f)| (f.rel.as_str(), i)).collect();
    let reach = graph.reachable(&roots);
    for &n in &reach.order {
        let node = &graph.nodes[n];
        let Some(&pidx) = by_rel.get(node.rel) else { continue };
        let Some((start, end)) = node.f.body else { continue };
        // A nested fn's tokens sit inside the outer body span but belong to
        // their own node; skip them here so unreachable inner fns are not
        // charged to the outer function.
        let nested: Vec<(usize, usize)> = prepared[pidx]
            .parsed
            .fns
            .iter()
            .filter_map(|f| f.body)
            .filter(|&(s, e)| s > start && e <= end && (s, e) != (start, end))
            .collect();
        let path = reach.path_to(n);
        let root_label = graph.nodes[path[0]].label();
        let path_str =
            path.iter().map(|&i| graph.nodes[i].label()).collect::<Vec<_>>().join(" -> ");
        scan_panic_sites(
            node.rel,
            &prepared[pidx].lexed,
            start,
            end,
            &nested,
            &root_label,
            &path_str,
            &mut raw[pidx],
        );
    }
}

/// Flag the panic sites in one function body token range.
#[allow(clippy::too_many_arguments)]
fn scan_panic_sites(
    rel: &str,
    lexed: &Lexed,
    start: usize,
    end: usize,
    nested: &[(usize, usize)],
    root_label: &str,
    path_str: &str,
    out: &mut Vec<Finding>,
) {
    let toks = &lexed.tokens;
    for i in start..end.min(toks.len()) {
        if nested.iter().any(|&(s, e)| i >= s && i < e) {
            continue;
        }
        let line = toks[i].line;
        let mut push = |what: &str| {
            out.push(Finding {
                rule: Rule::PanicReachability,
                file: rel.to_owned(),
                line,
                message: format!(
                    "{what}, and this function is reachable from L5 entry point \
                     `{root_label}` (call path: {path_str}); propagate a typed error \
                     or justify with `lint: allow(panic, \"...\")`"
                ),
            });
        };
        match &toks[i].tok {
            Tok::Ident(name) if PANIC_METHODS.contains(&name.as_str()) => {
                let is_method_call =
                    i > 0 && lexed.is_punct(i - 1, '.') && lexed.is_punct(i + 1, '(');
                if is_method_call {
                    push(&format!("`.{name}()` can panic on hostile input"));
                }
            }
            Tok::Ident(name)
                if PANIC_MACROS.contains(&name.as_str()) && lexed.is_punct(i + 1, '!') =>
            {
                push(&format!("`{name}!` aborts the whole run"));
            }
            Tok::Punct('[') if i > 0 => {
                let indexes = match &toks[i - 1].tok {
                    Tok::Ident(prev) => !NON_INDEX_PREV.contains(&prev.as_str()),
                    Tok::Punct(')') | Tok::Punct(']') => true,
                    _ => false,
                };
                if indexes {
                    push("slice/array indexing can panic on attacker-controlled lengths");
                }
            }
            _ => {}
        }
    }
}

/// L2: no unordered collections, no wall-clock or ambient RNG reads, in
/// crates whose state can reach a snapshot digest.
fn check_determinism(rel: &str, lexed: &Lexed, tests: &[(u32, u32)], out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        let line = t.line;
        if in_ranges(tests, line) {
            continue;
        }
        let Tok::Ident(name) = &t.tok else { continue };
        let message = match name.as_str() {
            "HashMap" | "HashSet" => Some(format!(
                "`{name}` iteration order is hash-seed dependent and can leak into \
                 snapshot digests; use `BTreeMap`/`BTreeSet` or sorted iteration"
            )),
            "Instant" | "SystemTime"
                if lexed.is_punct(i + 1, ':')
                    && lexed.is_punct(i + 2, ':')
                    && lexed.ident(i + 3) == Some("now") =>
            {
                Some(format!(
                    "`{name}::now()` makes output depend on wall-clock time; keep timing \
                     in `bench`/`cli` or justify with `lint: allow(nondeterminism, \"...\")`"
                ))
            }
            "thread_rng" => Some(
                "`thread_rng()` is ambiently seeded; thread a seeded RNG through \
                 instead so runs are reproducible"
                    .to_owned(),
            ),
            // Inside the observability crate every monotonic read — not just
            // `::now()` — needs an audited proof that the value stays in
            // telemetry and never reaches snapshot-bearing output, because
            // obs is exactly where clock reads concentrate.
            "elapsed" | "duration_since"
                if rel.starts_with("crates/obs/")
                    && i > 0
                    && lexed.is_punct(i - 1, '.')
                    && lexed.is_punct(i + 1, '(') =>
            {
                Some(format!(
                    "`.{name}()` reads the monotonic clock inside `crates/obs`; prove the \
                     value never feeds snapshot-bearing output with \
                     `lint: allow(nondeterminism, \"...\")`"
                ))
            }
            _ => None,
        };
        if let Some(message) = message {
            out.push(Finding { rule: Rule::Determinism, file: rel.to_owned(), line, message });
        }
    }
}

/// L6: flag `as` casts to narrowing/sign-changing/precision-losing targets.
/// Literal-source casts (`1 as u64`) are compile-time-checkable noise and
/// are skipped; `as f64` is exempt (see [`LOSSY_CAST_TARGETS`]).
fn check_lossy_casts(rel: &str, lexed: &Lexed, tests: &[(u32, u32)], out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if lexed.ident(i) != Some("as") {
            continue;
        }
        let Some(ty) = lexed.ident(i + 1) else { continue };
        if !LOSSY_CAST_TARGETS.contains(&ty) {
            continue;
        }
        let line = toks[i].line;
        if in_ranges(tests, line) {
            continue;
        }
        if i > 0 && matches!(toks[i - 1].tok, Tok::Literal) {
            continue;
        }
        out.push(Finding {
            rule: Rule::LossyCast,
            file: rel.to_owned(),
            line,
            message: format!(
                "`as {ty}` silently truncates, wraps, or drops sign/precision on \
                 out-of-range values; use `{ty}::try_from` with a typed error (or a \
                 lossless `From`), or justify with `lint: allow(cast, \"...\")`"
            ),
        });
    }
}

/// The unit class of an identifier under L7, by its `_`-separated words.
/// Identifiers hitting both classes (`bytes_per_sec`) are rates and stay
/// unclassified.
fn unit_class(name: &str) -> Option<&'static str> {
    let mut time = false;
    let mut vol = false;
    for part in name.split('_') {
        time |= TIME_WORDS.contains(&part);
        vol |= VOL_WORDS.contains(&part);
    }
    match (time, vol) {
        (true, false) => Some("seconds/duration"),
        (false, true) => Some("byte-volume"),
        _ => None,
    }
}

/// L7: flag `+`/`-` arithmetic whose operands classify into *different*
/// unit classes (seconds vs bytes). Operands are identifier chains
/// (`a.b.c` classifies by `c`); calls, literals and unclassifiable names
/// are skipped, so the rule only fires on nameably-wrong math.
fn check_unit_mixing(rel: &str, lexed: &Lexed, tests: &[(u32, u32)], out: &mut Vec<Finding>) {
    let toks = &lexed.tokens;
    for (i, t) in toks.iter().enumerate() {
        let op = match &t.tok {
            Tok::Punct(c @ ('+' | '-')) => *c,
            _ => continue,
        };
        let line = t.line;
        if in_ranges(tests, line) {
            continue;
        }
        // `+=`, `-=`, `->` are not binary add/sub.
        if lexed.is_punct(i + 1, '=') || (op == '-' && lexed.is_punct(i + 1, '>')) {
            continue;
        }
        // Left operand: the identifier directly before the operator — the
        // last segment of any `a.b.c` chain. Unary minus has punct there.
        let Some(left) = (i > 0).then(|| lexed.ident(i - 1)).flatten() else { continue };
        // Right operand: walk the identifier chain forward; a trailing `(`
        // makes it a call whose unit we cannot name.
        let mut j = i + 1;
        let Some(mut right) = lexed.ident(j) else { continue };
        while lexed.is_punct(j + 1, '.') {
            match lexed.ident(j + 2) {
                Some(seg) => {
                    right = seg;
                    j += 2;
                }
                None => break,
            }
        }
        if lexed.is_punct(j + 1, '(') {
            continue;
        }
        let (Some(lc), Some(rc)) = (unit_class(left), unit_class(right)) else { continue };
        if lc != rc {
            out.push(Finding {
                rule: Rule::UnitMix,
                file: rel.to_owned(),
                line,
                message: format!(
                    "`{left} {op} {right}` mixes a {lc} identifier with a {rc} \
                     identifier; keep the (duration, volume) feature axes apart via \
                     `mosaic_core::units` newtypes or justify with \
                     `lint: allow(unit, \"...\")`"
                ),
            });
        }
    }
}

/// L3 (token half): any `unsafe` keyword outside test code.
fn check_unsafe_tokens(rel: &str, lexed: &Lexed, tests: &[(u32, u32)], out: &mut Vec<Finding>) {
    for t in &lexed.tokens {
        if matches!(&t.tok, Tok::Ident(name) if name == "unsafe") && !in_ranges(tests, t.line) {
            out.push(Finding {
                rule: Rule::UnsafeHygiene,
                file: rel.to_owned(),
                line: t.line,
                message: "`unsafe` is not used anywhere in this workspace; every crate \
                          forbids it at the root"
                    .to_owned(),
            });
        }
    }
}

/// L3 (structural half): every crate root must declare
/// `#![forbid(unsafe_code)]`.
fn check_crate_roots(files: &[FileInput], prepared: &[Prepared], out: &mut Vec<Finding>) {
    for p in prepared {
        let rel = &files[p.idx].rel;
        if !is_crate_root(rel) {
            continue;
        }
        if !has_forbid_unsafe(&p.lexed) {
            out.push(Finding {
                rule: Rule::UnsafeHygiene,
                file: rel.clone(),
                line: 1,
                message: "crate root is missing `#![forbid(unsafe_code)]`".to_owned(),
            });
        }
    }
}

/// A crate root: `crates/<name>/src/lib.rs`, `crates/<name>/src/main.rs`,
/// a shim's `shims/<name>/src/lib.rs`, or the examples package's
/// `examples/lib.rs`.
fn is_crate_root(rel: &str) -> bool {
    if rel == "examples/lib.rs" {
        return true;
    }
    let Some(rest) = rel.strip_prefix("crates/").or_else(|| rel.strip_prefix("shims/")) else {
        return false;
    };
    let mut parts = rest.split('/');
    let (_name, src, file, end) = (parts.next(), parts.next(), parts.next(), parts.next());
    src == Some("src") && matches!(file, Some("lib.rs") | Some("main.rs")) && end.is_none()
}

/// Match the token sequence `# ! [ forbid ( unsafe_code ) ]`.
fn has_forbid_unsafe(lexed: &Lexed) -> bool {
    (0..lexed.tokens.len()).any(|i| {
        lexed.is_punct(i, '#')
            && lexed.is_punct(i + 1, '!')
            && lexed.is_punct(i + 2, '[')
            && lexed.ident(i + 3) == Some("forbid")
            && lexed.is_punct(i + 4, '(')
            && lexed.ident(i + 5) == Some("unsafe_code")
            && lexed.is_punct(i + 6, ')')
            && lexed.is_punct(i + 7, ']')
    })
}

/// L4: every `EvictReason` variant constructed anywhere must be accounted
/// for, by name, in the taxonomy's `class` and `slug` matches — and those
/// matches may not hide behind a `_` wildcard. This is what keeps
/// `by_reason` counters from ever silently dropping a reason.
fn check_taxonomy(files: &[FileInput], prepared: &[Prepared], out: &mut Vec<Finding>) {
    let taxonomy = prepared.iter().find(|p| files[p.idx].rel == TAXONOMY_FILE);
    let Some(tax_lexed) = taxonomy.map(|p| &p.lexed) else {
        // Only demand the taxonomy file when its crate is in the input set
        // (so in-memory fixture runs against other crates stay quiet).
        if files.iter().any(|f| f.rel.starts_with("crates/darshan/src/")) {
            out.push(Finding {
                rule: Rule::Taxonomy,
                file: TAXONOMY_FILE.to_owned(),
                line: 1,
                message: format!("taxonomy file with `enum {TAXONOMY_ENUM}` not found"),
            });
        }
        return;
    };

    let Some(declared) = enum_variants(tax_lexed, TAXONOMY_ENUM) else {
        out.push(Finding {
            rule: Rule::Taxonomy,
            file: TAXONOMY_FILE.to_owned(),
            line: 1,
            message: format!("`enum {TAXONOMY_ENUM}` not found in {TAXONOMY_FILE}"),
        });
        return;
    };

    let Some(impl_range) = inherent_impl_range(tax_lexed, TAXONOMY_ENUM) else {
        out.push(Finding {
            rule: Rule::Taxonomy,
            file: TAXONOMY_FILE.to_owned(),
            line: 1,
            message: format!("`impl {TAXONOMY_ENUM}` block not found in {TAXONOMY_FILE}"),
        });
        return;
    };

    let mut accounted: Vec<(String, Vec<String>)> = Vec::new();
    for fn_name in TAXONOMY_FNS {
        match fn_body_range(tax_lexed, fn_name, impl_range) {
            Some((start, end)) => {
                let covered = variant_refs_in(tax_lexed, start, end, TAXONOMY_ENUM);
                if wildcard_arm_in(tax_lexed, start, end) {
                    out.push(Finding {
                        rule: Rule::Taxonomy,
                        file: TAXONOMY_FILE.to_owned(),
                        line: tax_lexed.tokens[start].line,
                        message: format!(
                            "`{TAXONOMY_ENUM}::{fn_name}` uses a `_` wildcard arm — a new \
                             variant could silently fall through the accounting; name \
                             every variant"
                        ),
                    });
                }
                for (variant, line) in &declared {
                    if !covered.iter().any(|c| c == variant) {
                        out.push(Finding {
                            rule: Rule::Taxonomy,
                            file: TAXONOMY_FILE.to_owned(),
                            line: *line,
                            message: format!(
                                "variant `{TAXONOMY_ENUM}::{variant}` is missing from the \
                                 `{fn_name}` accounting match"
                            ),
                        });
                    }
                }
                accounted.push(((*fn_name).to_owned(), covered));
            }
            None => out.push(Finding {
                rule: Rule::Taxonomy,
                file: TAXONOMY_FILE.to_owned(),
                line: 1,
                message: format!("accounting fn `{fn_name}` not found in {TAXONOMY_FILE}"),
            }),
        }
    }

    // Every construction site across the workspace must name a declared,
    // accounted variant.
    for p in prepared {
        let rel = &files[p.idx].rel;
        let lexed = &p.lexed;
        for i in 0..lexed.tokens.len() {
            let Some(variant) = variant_ref_at(lexed, i, TAXONOMY_ENUM) else { continue };
            let line = lexed.tokens[i].line;
            if !declared.iter().any(|(v, _)| *v == variant) {
                out.push(Finding {
                    rule: Rule::Taxonomy,
                    file: rel.clone(),
                    line,
                    message: format!(
                        "`{TAXONOMY_ENUM}::{variant}` is not a declared variant of the \
                         taxonomy"
                    ),
                });
                continue;
            }
            for (fn_name, covered) in &accounted {
                if !covered.contains(&variant) {
                    out.push(Finding {
                        rule: Rule::Taxonomy,
                        file: rel.clone(),
                        line,
                        message: format!(
                            "`{TAXONOMY_ENUM}::{variant}` is constructed here but missing \
                             from the `{fn_name}` accounting match in {TAXONOMY_FILE}"
                        ),
                    });
                }
            }
        }
    }
}

/// The variants of `enum <name> { … }` as `(variant, line)`, or `None` when
/// the enum is absent.
fn enum_variants(lexed: &Lexed, name: &str) -> Option<Vec<(String, u32)>> {
    let toks = &lexed.tokens;
    let start = (0..toks.len())
        .find(|&i| lexed.ident(i) == Some("enum") && lexed.ident(i + 1) == Some(name))?;
    let open = (start..toks.len()).find(|&i| lexed.is_punct(i, '{'))?;
    let mut variants = Vec::new();
    let mut depth = 0i32;
    let mut i = open;
    while i < toks.len() {
        match &toks[i].tok {
            Tok::Punct('{') | Tok::Punct('(') => depth += 1,
            Tok::Punct('}') | Tok::Punct(')') => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            Tok::Ident(v) if depth == 1 => {
                // A variant name directly follows `{` or `,` at depth 1
                // (attributes on variants would need more care; the
                // taxonomy has none).
                let after_sep = lexed.is_punct(i - 1, '{') || lexed.is_punct(i - 1, ',');
                if after_sep {
                    variants.push((v.clone(), toks[i].line));
                }
            }
            _ => {}
        }
        i += 1;
    }
    Some(variants)
}

/// Token range of the body of the inherent `impl <name> { … }` block
/// (other `fn slug`s exist in the file — `ValidityError` has one too — so
/// accounting fns are only looked up inside the taxonomy's own impl).
fn inherent_impl_range(lexed: &Lexed, name: &str) -> Option<(usize, usize)> {
    let toks = &lexed.tokens;
    let open = (0..toks.len()).find(|&i| {
        lexed.ident(i) == Some("impl")
            && lexed.ident(i + 1) == Some(name)
            && lexed.is_punct(i + 2, '{')
    })? + 2;
    let mut depth = 0i32;
    for i in open..toks.len() {
        if lexed.is_punct(i, '{') {
            depth += 1;
        } else if lexed.is_punct(i, '}') {
            depth -= 1;
            if depth == 0 {
                return Some((open + 1, i));
            }
        }
    }
    None
}

/// Token range (exclusive of the braces) of the body of `fn <name>`,
/// searched within `(start, end)`.
fn fn_body_range(
    lexed: &Lexed,
    name: &str,
    (start, end): (usize, usize),
) -> Option<(usize, usize)> {
    let toks = &lexed.tokens;
    let fn_idx =
        (start..end).find(|&i| lexed.ident(i) == Some("fn") && lexed.ident(i + 1) == Some(name))?;
    let open = (fn_idx..toks.len()).find(|&i| lexed.is_punct(i, '{'))?;
    let mut depth = 0i32;
    for i in open..toks.len() {
        if lexed.is_punct(i, '{') {
            depth += 1;
        } else if lexed.is_punct(i, '}') {
            depth -= 1;
            if depth == 0 {
                return Some((open + 1, i));
            }
        }
    }
    None
}

/// `Enum::Variant` references (capitalized) inside a token range.
fn variant_refs_in(lexed: &Lexed, start: usize, end: usize, enum_name: &str) -> Vec<String> {
    let mut refs = Vec::new();
    for i in start..end {
        if let Some(v) = variant_ref_at(lexed, i, enum_name) {
            if !refs.contains(&v) {
                refs.push(v);
            }
        }
    }
    refs
}

/// The variant named by the `Enum :: Variant` sequence starting at `i`.
fn variant_ref_at(lexed: &Lexed, i: usize, enum_name: &str) -> Option<String> {
    if lexed.ident(i) != Some(enum_name)
        || !lexed.is_punct(i + 1, ':')
        || !lexed.is_punct(i + 2, ':')
    {
        return None;
    }
    let next = lexed.ident(i + 3)?;
    // Associated functions (`EvictReason::from_str`) start lowercase.
    next.chars().next().filter(char::is_ascii_uppercase)?;
    Some(next.to_owned())
}

/// A `_ =>` match arm inside a token range.
fn wildcard_arm_in(lexed: &Lexed, start: usize, end: usize) -> bool {
    (start..end).any(|i| {
        lexed.ident(i) == Some("_") && lexed.is_punct(i + 1, '=') && lexed.is_punct(i + 2, '>')
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(rel: &str, text: &str) -> Vec<Finding> {
        lint_files(&[FileInput { rel: rel.to_owned(), text: text.to_owned() }]).findings
    }

    /// Findings of one rule only — the single-file tests below exercise one
    /// rule at a time, and a lone darshan file also (correctly) trips the
    /// L4 "taxonomy file required" check.
    fn lint_rule(rel: &str, text: &str, rule: Rule) -> Vec<Finding> {
        let mut f = lint_one(rel, text);
        f.retain(|f| f.rule == rule);
        f
    }

    const L5_FILE: &str = "crates/darshan/src/mdf.rs";
    const L2_FILE: &str = "crates/core/src/merge.rs";

    #[test]
    fn l5_flags_panics_inside_an_entry_point() {
        let src = "pub fn from_bytes(x: Option<u8>) -> u8 {\n    let a = x.unwrap();\n    let b = x.expect(\"y\");\n    panic!(\"no\");\n}\n";
        let f = lint_rule(L5_FILE, src, Rule::PanicReachability);
        assert_eq!(f.len(), 3, "{f:?}");
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("mdf::from_bytes"), "{}", f[0].message);
    }

    #[test]
    fn l5_follows_calls_two_hops_down_and_names_the_path() {
        let src = "\
pub fn from_bytes(d: &[u8]) -> u8 {
    helper(d)
}
fn helper(d: &[u8]) -> u8 {
    deep(d)
}
fn deep(d: &[u8]) -> u8 {
    d[0]
}
";
        let f = lint_rule(L5_FILE, src, Rule::PanicReachability);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 8);
        assert!(
            f[0].message.contains("mdf::from_bytes -> mdf::helper -> mdf::deep"),
            "path missing: {}",
            f[0].message
        );
    }

    #[test]
    fn l5_unreachable_fns_may_panic() {
        let src = "\
pub fn from_bytes(d: &[u8]) -> u8 {
    d.first().copied().unwrap_or(0)
}
pub fn writer_only(x: Option<u8>) -> u8 {
    x.unwrap()
}
";
        assert!(lint_rule(L5_FILE, src, Rule::PanicReachability).is_empty());
    }

    #[test]
    fn l5_flags_slice_indexing_but_not_array_literals() {
        let src =
            "pub fn from_bytes(d: &[u8]) -> u8 {\n    let t = [1u8, 2];\n    for x in [1, 2] {}\n    d[0]\n}\n";
        let f = lint_rule(L5_FILE, src, Rule::PanicReachability);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn l5_test_modules_are_exempt() {
        let src = "pub fn from_bytes(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n#[cfg(test)]\nmod tests {\n    fn t() { None::<u8>.unwrap(); }\n}\n";
        assert!(lint_rule(L5_FILE, src, Rule::PanicReachability).is_empty());
    }

    #[test]
    fn l5_out_of_scope_files_are_quiet() {
        let src = "fn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(lint_one("crates/viz/src/bars.rs", src).is_empty());
    }

    #[test]
    fn l5_missing_entry_point_is_a_finding() {
        let src = "pub fn renamed_parse(d: &[u8]) -> u8 { 0 }\n";
        let f = lint_rule(L5_FILE, src, Rule::PanicReachability);
        assert!(
            f.iter().any(|f| f.message.contains("entry point `from_bytes` not found")),
            "{f:?}"
        );
    }

    #[test]
    fn justified_allow_suppresses_same_or_next_line() {
        let trailing =
            "pub fn from_bytes(x: Option<u8>) -> u8 { x.unwrap() } // lint: allow(panic, \"len checked above\")\n";
        assert!(lint_rule(L5_FILE, trailing, Rule::PanicReachability).is_empty());
        assert!(lint_rule(L5_FILE, trailing, Rule::MalformedAllow).is_empty());
        assert!(lint_rule(L5_FILE, trailing, Rule::UnusedAllow).is_empty());
        let preceding =
            "// lint: allow(panic, \"len checked above\")\npub fn from_bytes(x: Option<u8>) -> u8 { x.unwrap() }\n";
        assert!(lint_rule(L5_FILE, preceding, Rule::PanicReachability).is_empty());
    }

    #[test]
    fn unused_allow_is_itself_a_finding() {
        let src =
            "pub fn from_bytes(x: Option<u8>) -> u8 { x.unwrap_or(0) } // lint: allow(panic, \"stale claim\")\n";
        let f = lint_rule(L5_FILE, src, Rule::UnusedAllow);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 1);
        assert!(f[0].message.contains("allow(panic"), "{}", f[0].message);
    }

    #[test]
    fn allow_missing_justification_is_itself_a_finding() {
        let src = "pub fn from_bytes(x: Option<u8>) -> u8 { x.unwrap() } // lint: allow(panic)\n";
        let f = lint_one(L5_FILE, src);
        assert!(f.iter().any(|f| f.rule == Rule::MalformedAllow), "{f:?}");
        // …and it does NOT suppress the unwrap.
        assert!(f.iter().any(|f| f.rule == Rule::PanicReachability), "{f:?}");
    }

    #[test]
    fn allow_with_empty_or_unquoted_justification_is_malformed() {
        for bad in [
            "// lint: allow(panic, \"\")",
            "// lint: allow(panic, because reasons)",
            "// lint: allow(frobnication, \"x\")",
            "// lint: allowance",
        ] {
            let src = format!("pub fn from_bytes() {{}}\n{bad}\n");
            let f = lint_one(L5_FILE, &src);
            assert!(
                f.iter().any(|f| f.rule == Rule::MalformedAllow),
                "{bad} should be malformed: {f:?}"
            );
        }
    }

    #[test]
    fn allow_key_must_match_the_rule() {
        let src =
            "pub fn from_bytes(x: Option<u8>) -> u8 { x.unwrap() } // lint: allow(nondeterminism, \"wrong key\")\n";
        let f = lint_one(L5_FILE, src);
        assert!(f.iter().any(|f| f.rule == Rule::PanicReachability), "{f:?}");
        // The wrong-keyed allow suppressed nothing, so it is also stale.
        assert!(f.iter().any(|f| f.rule == Rule::UnusedAllow), "{f:?}");
    }

    #[test]
    fn l6_flags_narrowing_casts_but_not_f64_or_literals() {
        let src = "\
pub fn from_bytes(n: u64, f: f64) -> u32 {
    let a = n as u32;
    let b = n as f64;
    let c = 7 as u64;
    let d = f as f32;
    let _ = (b, c, d);
    a
}
";
        let f = lint_rule(L5_FILE, src, Rule::LossyCast);
        assert_eq!(f.len(), 2, "{f:?}");
        assert_eq!(f[0].line, 2);
        assert_eq!(f[1].line, 5);
        assert!(f[0].message.contains("u32::try_from"), "{}", f[0].message);
    }

    #[test]
    fn l6_allow_suppresses_an_audited_cast() {
        let src = "pub fn from_bytes(n: u64) -> u32 { n as u32 } // lint: allow(cast, \"n <= u32::MAX by header clamp\")\n";
        assert!(lint_rule(L5_FILE, src, Rule::LossyCast).is_empty());
        assert!(lint_rule(L5_FILE, src, Rule::UnusedAllow).is_empty());
    }

    #[test]
    fn l6_is_scoped_to_parse_merge_categorize_paths() {
        let src = "pub fn render(n: u64) -> u32 { n as u32 }\n";
        assert!(lint_one("crates/viz/src/bars.rs", src).is_empty());
        assert!(lint_one("crates/cli/src/table.rs", src).is_empty());
    }

    #[test]
    fn l6_test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let _ = 300u64 as u8; }\n}\n";
        assert!(lint_rule(L2_FILE, src, Rule::LossyCast).is_empty());
    }

    #[test]
    fn l7_flags_mixed_unit_arithmetic() {
        let src = "pub fn f(duration: f64, bytes: f64) -> f64 { duration + bytes }\n";
        let f = lint_rule(L2_FILE, src, Rule::UnitMix);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("seconds/duration"), "{}", f[0].message);
        assert!(f[0].message.contains("byte-volume"), "{}", f[0].message);
    }

    #[test]
    fn l7_classifies_field_chains_by_their_last_segment() {
        let src = "pub fn f(s: &Seg) -> f64 { s.window.end_time - s.total_bytes }\n";
        let f = lint_rule(L2_FILE, src, Rule::UnitMix);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn l7_same_class_and_unclassified_arithmetic_is_quiet() {
        let src = "\
pub fn f(s: &Seg) -> f64 {
    let span = s.end_time - s.start_time;
    let total = s.read_bytes + s.write_bytes;
    let rate = s.bytes_per_sec + s.overhead;
    let idx = s.cursor + s.stride;
    span + total + rate + idx
}
";
        assert!(lint_rule(L2_FILE, src, Rule::UnitMix).is_empty());
    }

    #[test]
    fn l7_skips_calls_literals_and_compound_assignment() {
        let src = "\
pub fn f(s: &mut Seg) -> f64 {
    s.bytes += 1.0;
    let x = s.duration + helper(s);
    let y = s.duration - 2.0;
    x + y
}
fn helper(_s: &Seg) -> f64 { 0.0 }
";
        assert!(lint_rule(L2_FILE, src, Rule::UnitMix).is_empty());
    }

    #[test]
    fn l7_allow_suppresses_audited_mixing() {
        let src = "pub fn f(duration: f64, bytes: f64) -> f64 { duration + bytes } // lint: allow(unit, \"log-scaled composite score, dimensionless\")\n";
        assert!(lint_rule(L2_FILE, src, Rule::UnitMix).is_empty());
    }

    #[test]
    fn l2_flags_hash_collections_and_wall_clock() {
        let src = "use std::collections::HashMap;\nfn f() {\n    let m: HashMap<u8, u8> = HashMap::new();\n    let t = std::time::Instant::now();\n    let _ = (m, t);\n}\n";
        let f = lint_one(L2_FILE, src);
        assert!(f.iter().filter(|f| f.rule == Rule::Determinism).count() >= 3, "{f:?}");
    }

    #[test]
    fn l2_exempt_crates_may_use_hashmaps_and_clocks() {
        let src = "use std::collections::HashMap;\nfn f() { let _ = std::time::Instant::now(); }\n";
        assert!(lint_one("crates/cli/src/args.rs", src).is_empty());
        assert!(lint_one("crates/bench/src/run.rs", src).is_empty());
    }

    #[test]
    fn l2_monotonic_reads_are_flagged_only_inside_obs() {
        let src = "fn f(t: std::time::Instant, u: std::time::Instant) -> u128 {\n    t.elapsed().as_nanos() + u.duration_since(t).as_nanos()\n}\n";
        // Outside crates/obs, `.elapsed()`/`.duration_since()` stay quiet.
        assert!(lint_one(L2_FILE, src).is_empty());
        // Inside (a non-root file: a crate root would also trip L3), both
        // are L2 findings...
        let f = lint_one("crates/obs/src/trace.rs", src);
        assert_eq!(f.iter().filter(|f| f.rule == Rule::Determinism).count(), 2, "{f:?}");
        // ...and an audited allow on the preceding line discharges them.
        let audited = "fn f(t: std::time::Instant) -> u128 {\n    // lint: allow(nondeterminism, \"telemetry only\")\n    t.elapsed().as_nanos()\n}\n";
        assert!(lint_one("crates/obs/src/trace.rs", audited).is_empty());
        // A field access named `elapsed` (no call parens) is not a read.
        let field = "struct S { elapsed: u64 }\nfn f(s: &S) -> u64 { s.elapsed }\n";
        assert!(lint_one("crates/obs/src/trace.rs", field).is_empty());
    }

    #[test]
    fn l2_flags_thread_rng_but_not_seeded_rngs() {
        let src = "fn f() { let r = thread_rng(); }\n";
        assert_eq!(lint_one(L2_FILE, src).len(), 1);
        let seeded = "fn f() { let r = StdRng::seed_from_u64(42); }\n";
        assert!(lint_one(L2_FILE, seeded).is_empty());
    }

    #[test]
    fn l3_missing_forbid_on_crate_root() {
        let src = "//! A crate.\npub fn f() {}\n";
        let f = lint_one("crates/demo/src/lib.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, Rule::UnsafeHygiene);
        let fixed = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        assert!(lint_one("crates/demo/src/lib.rs", fixed).is_empty());
    }

    #[test]
    fn l3_flags_unsafe_blocks_anywhere() {
        let src = "#![forbid(unsafe_code)]\npub fn f() { let _ = 1; }\nfn g() { unsafe { core::hint::unreachable_unchecked() } }\n";
        let f = lint_one("crates/demo/src/lib.rs", src);
        assert!(f.iter().any(|f| f.rule == Rule::UnsafeHygiene && f.line == 3), "{f:?}");
    }

    #[test]
    fn l3_non_root_files_do_not_need_the_attribute() {
        let src = "pub fn helper() {}\n";
        assert!(lint_one("crates/demo/src/helper.rs", src).is_empty());
    }

    const TAXONOMY_OK: &str = "\
pub enum EvictReason {
    IoError,
    BadMagic,
    ValidationFatal(ValidityError),
}
impl EvictReason {
    pub fn class(self) -> EvictClass {
        match self {
            EvictReason::IoError => EvictClass::Io,
            EvictReason::BadMagic => EvictClass::Format,
            EvictReason::ValidationFatal(_) => EvictClass::Validation,
        }
    }
    pub fn slug(self) -> String {
        match self {
            EvictReason::IoError => \"io_error\".to_owned(),
            EvictReason::BadMagic => \"bad_magic\".to_owned(),
            EvictReason::ValidationFatal(r) => r.slug(),
        }
    }
}
";

    /// Satisfies the L5 roots whose files are named in multi-file L4 tests.
    const DARSHAN_ROOTS_OK: &str = "pub fn from_bytes(d: &[u8]) -> u8 { 0 }\n";

    #[test]
    fn l4_clean_taxonomy_passes() {
        let files = [
            FileInput { rel: TAXONOMY_FILE.to_owned(), text: TAXONOMY_OK.to_owned() },
            FileInput {
                rel: "crates/pipeline/src/x.rs".to_owned(),
                text: "fn f() -> EvictReason { EvictReason::BadMagic }\n".to_owned(),
            },
        ];
        let r = lint_files(&files);
        assert!(r.is_clean(), "{:?}", r.findings);
    }

    #[test]
    fn l4_variant_missing_from_accounting_match() {
        let broken = TAXONOMY_OK.replace("EvictReason::BadMagic => EvictClass::Format,\n", "");
        let files = [FileInput { rel: TAXONOMY_FILE.to_owned(), text: broken }];
        let f = lint_files(&files).findings;
        assert!(
            f.iter().any(|f| f.rule == Rule::Taxonomy && f.message.contains("`class`")),
            "{f:?}"
        );
    }

    #[test]
    fn l4_wildcard_arm_is_a_finding() {
        let broken = TAXONOMY_OK.replace(
            "EvictReason::ValidationFatal(_) => EvictClass::Validation,",
            "_ => EvictClass::Validation,",
        );
        let files = [FileInput { rel: TAXONOMY_FILE.to_owned(), text: broken }];
        let f = lint_files(&files).findings;
        assert!(f.iter().any(|f| f.message.contains("wildcard")), "{f:?}");
    }

    #[test]
    fn l4_constructing_an_undeclared_variant_is_flagged_at_the_site() {
        let files = [
            FileInput { rel: TAXONOMY_FILE.to_owned(), text: TAXONOMY_OK.to_owned() },
            FileInput {
                rel: "crates/pipeline/src/x.rs".to_owned(),
                text: "fn f() -> EvictReason { EvictReason::CosmicRays }\n".to_owned(),
            },
        ];
        let f = lint_files(&files).findings;
        assert!(
            f.iter().any(|f| f.rule == Rule::Taxonomy
                && f.file == "crates/pipeline/src/x.rs"
                && f.message.contains("CosmicRays")),
            "{f:?}"
        );
    }

    #[test]
    fn l4_taxonomy_file_required_when_darshan_present() {
        let files = [FileInput { rel: L5_FILE.to_owned(), text: DARSHAN_ROOTS_OK.to_owned() }];
        let f = lint_files(&files).findings;
        assert!(f.iter().any(|f| f.rule == Rule::Taxonomy), "{f:?}");
    }
}
