#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! `mosaic-lint` — the Mosaic workspace invariant linter.
//!
//! A self-hosted static-analysis pass over every `.rs` file in the
//! workspace. On top of a hand-rolled tokenizer ([`lex`]) sits a
//! lightweight item/function parser ([`parse`]) and a workspace call
//! graph ([`graph`]), which make the rules *semantic*:
//!
//! - **L2 determinism**: no `HashMap`/`HashSet`, wall-clock reads, or
//!   ambient RNG in crates whose state feeds `ResultSnapshot` digests.
//! - **L3 unsafe hygiene**: every crate root declares
//!   `#![forbid(unsafe_code)]` and no `unsafe` token appears anywhere.
//! - **L4 error-taxonomy exhaustiveness**: every constructed
//!   `EvictReason` variant is accounted for, by name, in `class` and
//!   `slug` — so `by_reason` counters can never silently drop a reason.
//! - **L5 transitive panic-reachability**: no panic site (`unwrap`/
//!   `expect`, panicking macros, slice indexing) in *any function
//!   reachable over the call graph* from the untrusted-input entry
//!   points (darshan parsers, pipeline drivers). Findings name the call
//!   path. Supersedes the old per-file L1 allowlist. Escape hatch:
//!   `// lint: allow(panic, "<proof>")`.
//! - **L6 lossy-cast safety**: no narrowing/sign/float-truncating `as`
//!   casts in parse/merge/categorize paths — `try_from` + typed error,
//!   a lossless `From`, or an audited `allow(cast, …)`.
//! - **L7 unit consistency**: no `+`/`-` arithmetic mixing byte-volume
//!   and seconds-duration identifiers; route through
//!   `mosaic_core::units` newtypes or audit with `allow(unit, …)`.
//! - **L8 wire-taint dataflow** ([`dataflow`]): a length read off the
//!   wire by the binary parsers must be compared against a named
//!   `limits::MAX_*` guard constant before it sizes an allocation
//!   (`with_capacity`, `reserve`, `vec![x; n]`, slice-range bounds),
//!   on every interprocedural path; findings print the full taint
//!   path. Escape hatch: `// lint: allow(taint, "<proof>")`.
//! - **L9 guard parity**: the owned (`mdf.rs`) and borrowed (`view.rs`)
//!   parsers must enforce the same `MAX_*` guard set, anchored in the
//!   shared `darshan::limits` module — the static twin of the runtime
//!   differential oracle.
//! - **L10 atomics discipline** ([`sync`]): every Release-strength
//!   publish on an atomic must have an Acquire-strength consumer on the
//!   same field somewhere in the workspace (and vice versa); `Relaxed`
//!   is reserved for pure counters — a Relaxed-guarded branch must not
//!   read non-atomic shared fields, and a `fetch_*` result that is
//!   consumed must pair its ordering; the seqlock write/read brackets in
//!   `obs::trace` are verified shape-wise (odd store + `fence(Release)`
//!   before the payload, even `store(Release)` after, Acquire loads and
//!   `fence(Acquire)` around the reader's re-check). Escape hatch:
//!   `// lint: allow(sync, "<proof>")`.
//! - **L11 lock discipline** ([`sync`]): no `lock()`/`try_lock()` guard
//!   live across a `par_*`/`pool.install`/blocking-IO call, an acyclic
//!   workspace lock-acquisition-order graph (each cycle reported once
//!   with every hop's site), and poison-handling parity — `lock()`
//!   recovers via `PoisonError::into_inner`, `try_lock()` treats
//!   contention as a skip, never `unwrap`. Same `sync` escape hatch.
//! - **unused-allow**: a `lint: allow` that suppresses nothing is
//!   itself reported, so audited escape hatches cannot go stale.
//!
//! `--debt` flips the linter from gate to observability surface: a
//! hotspots/debtmap-style report ([`debt`]) ranking every workspace
//! function by cyclomatic-ish complexity × git churn.
//!
//! Test code (`#[cfg(test)]` items) is exempt from L2/L5/L6/L7: a
//! panicking test *is* the failure signal, and test-local clocks or
//! casts never reach a digest.
//!
//! The crate is deliberately dependency-free so it builds with a bare
//! `rustc` on machines with no crates registry access; JSON output is
//! hand-rolled with a fixed key order so reports are byte-stable.

pub mod dataflow;
pub mod debt;
pub mod findings;
pub mod graph;
pub mod lex;
pub mod parse;
pub mod rules;
pub mod sync;

pub use findings::{Finding, Report, Rule};
pub use rules::{lint_files, FileInput};

use std::path::{Path, PathBuf};

/// Directory-name components that are never linted: build output, VCS
/// metadata, and the linter's own deliberately-bad test fixtures.
const SKIP_DIRS: &[&str] = &["target", ".git", "fixtures"];

/// Walk up from `start` to the nearest directory whose `Cargo.toml`
/// declares a `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

/// Collect every `.rs` file under `crates/`, `examples/` and `shims/`, as
/// workspace-relative forward-slash paths, sorted. The shims are in-repo
/// stand-ins for external dependencies, so they carry the same unsafe-hygiene
/// obligations as first-party code.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    for top in ["crates", "examples", "shims"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Read every lintable file under `root` into in-memory inputs with
/// workspace-relative forward-slash paths.
pub fn collect_inputs(root: &Path) -> std::io::Result<Vec<FileInput>> {
    let mut inputs = Vec::new();
    for path in collect_rs_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let text = std::fs::read_to_string(&path)?;
        inputs.push(FileInput { rel, text });
    }
    Ok(inputs)
}

/// Read and lint the whole workspace rooted at `root`.
pub fn scan_workspace(root: &Path) -> std::io::Result<Report> {
    Ok(lint_files(&collect_inputs(root)?))
}

/// Exit status for a lint run: 0 clean, 1 findings, 2 usage/IO error.
pub const EXIT_CLEAN: i32 = 0;
/// Findings were reported.
pub const EXIT_FINDINGS: i32 = 1;
/// The invocation itself failed (bad flag, unreadable workspace).
pub const EXIT_ERROR: i32 = 2;

/// Shared CLI driver used by both the standalone `mosaic-lint` binary and
/// the `mosaic lint` subcommand. Accepts `--format text|json`,
/// `--root <dir>`, `--sarif <path>` (additionally write a stable SARIF
/// 2.1.0 document), `--sync-report <path>` (additionally write the
/// L10/L11 atomic-inventory + lock-order-graph JSON artifact), `--debt`
/// (technical-debt report instead of findings) and `--top <n>` (rows in
/// the markdown debt table); returns the process exit code.
pub fn cli_main(args: &[String]) -> i32 {
    let mut format = "text".to_owned();
    let mut root_arg: Option<PathBuf> = None;
    let mut sarif_path: Option<PathBuf> = None;
    let mut sync_report_path: Option<PathBuf> = None;
    let mut debt = false;
    let mut top = 10usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next() {
                Some(v) if v == "text" || v == "json" => format = v.clone(),
                Some(v) => {
                    eprintln!("mosaic-lint: unknown format {v:?} (expected text|json)");
                    return EXIT_ERROR;
                }
                None => {
                    eprintln!("mosaic-lint: --format requires a value");
                    return EXIT_ERROR;
                }
            },
            "--root" => match it.next() {
                Some(v) => root_arg = Some(PathBuf::from(v)),
                None => {
                    eprintln!("mosaic-lint: --root requires a value");
                    return EXIT_ERROR;
                }
            },
            "--sarif" => match it.next() {
                Some(v) => sarif_path = Some(PathBuf::from(v)),
                None => {
                    eprintln!("mosaic-lint: --sarif requires a path");
                    return EXIT_ERROR;
                }
            },
            "--sync-report" => match it.next() {
                Some(v) => sync_report_path = Some(PathBuf::from(v)),
                None => {
                    eprintln!("mosaic-lint: --sync-report requires a path");
                    return EXIT_ERROR;
                }
            },
            "--debt" => debt = true,
            "--top" => match it.next().map(|v| v.parse::<usize>()) {
                Some(Ok(n)) => top = n,
                _ => {
                    eprintln!("mosaic-lint: --top requires a number");
                    return EXIT_ERROR;
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: mosaic-lint [--format text|json] [--root <dir>] [--sarif <path>]\n\
                     \x20                  [--sync-report <path>] [--debt [--top <n>]]\n\n\
                     Enforces the Mosaic workspace invariants: L2 determinism,\n\
                     L3 unsafe hygiene, L4 error-taxonomy exhaustiveness,\n\
                     L5 call-graph panic-reachability from untrusted-input entry\n\
                     points, L6 lossy-cast safety, L7 unit consistency,\n\
                     L8 wire-taint dataflow (untrusted lengths must be\n\
                     MAX_*-guard-dominated before sizing allocations),\n\
                     L9 owned/borrowed parser guard-set parity,\n\
                     L10 atomics discipline (Release/Acquire pairing, seqlock\n\
                     brackets, Relaxed hygiene), L11 lock discipline (no guard\n\
                     across fan-out, acyclic lock order, poison parity), and\n\
                     unused-allow staleness. Exits 0 when clean, 1 on findings.\n\n\
                     --sarif <path> additionally writes the findings as a\n\
                     stable SARIF 2.1.0 document (for CI artifact upload).\n\n\
                     --sync-report <path> additionally writes the L10/L11\n\
                     atomic-field inventory and lock-acquisition-order graph\n\
                     as stable JSON (for CI artifact upload).\n\n\
                     --debt ranks every workspace function by complexity x git\n\
                     churn instead (markdown top-N table, or full JSON with\n\
                     --format json); always exits 0."
                );
                return EXIT_CLEAN;
            }
            other => {
                eprintln!("mosaic-lint: unknown argument {other:?}");
                return EXIT_ERROR;
            }
        }
    }

    let root = match root_arg {
        Some(r) => r,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("mosaic-lint: cannot determine working directory: {e}");
                    return EXIT_ERROR;
                }
            };
            match find_workspace_root(&cwd) {
                Some(r) => r,
                None => {
                    eprintln!("mosaic-lint: no workspace Cargo.toml found above {}", cwd.display());
                    return EXIT_ERROR;
                }
            }
        }
    };

    if debt {
        let report = match debt::debt_report(&root) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("mosaic-lint: failed to scan {}: {e}", root.display());
                return EXIT_ERROR;
            }
        };
        match format.as_str() {
            "json" => print!("{}", report.to_json()),
            _ => print!("{}", report.to_markdown(top)),
        }
        return EXIT_CLEAN;
    }

    let inputs = match collect_inputs(&root) {
        Ok(i) => i,
        Err(e) => {
            eprintln!("mosaic-lint: failed to scan {}: {e}", root.display());
            return EXIT_ERROR;
        }
    };
    let report = lint_files(&inputs);

    if let Some(path) = sarif_path {
        if let Err(e) = std::fs::write(&path, report.to_sarif()) {
            eprintln!("mosaic-lint: failed to write SARIF to {}: {e}", path.display());
            return EXIT_ERROR;
        }
    }
    if let Some(path) = sync_report_path {
        if let Err(e) = std::fs::write(&path, rules::sync_report_json(&inputs)) {
            eprintln!("mosaic-lint: failed to write sync report to {}: {e}", path.display());
            return EXIT_ERROR;
        }
    }
    match format.as_str() {
        "json" => print!("{}", report.to_json()),
        _ => print!("{}", report.render_text()),
    }
    if report.is_clean() {
        EXIT_CLEAN
    } else {
        EXIT_FINDINGS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The linter must pass on its own workspace: zero findings, with every
    /// surviving panic/nondeterminism site carrying a justified allow. Run
    /// from the source tree (the test binary's cwd or CARGO_MANIFEST_DIR).
    #[test]
    fn workspace_is_clean() {
        let start = std::env::var_os("CARGO_MANIFEST_DIR")
            .map(PathBuf::from)
            .or_else(|| std::env::current_dir().ok())
            .expect("no starting directory");
        let root = find_workspace_root(&start).expect("workspace root not found");
        let report = scan_workspace(&root).expect("scan failed");
        assert!(report.is_clean(), "workspace has lint findings:\n{}", report.render_text());
        assert!(report.files_scanned > 20, "suspiciously few files scanned");
    }

    #[test]
    fn walker_skips_fixture_directories() {
        let start = std::env::var_os("CARGO_MANIFEST_DIR")
            .map(PathBuf::from)
            .or_else(|| std::env::current_dir().ok())
            .expect("no starting directory");
        let root = find_workspace_root(&start).expect("workspace root not found");
        let files = collect_rs_files(&root).expect("walk failed");
        // The fixtures *directory* is skipped (its contents are deliberately
        // bad); the `tests/fixtures.rs` harness file itself is still linted.
        assert!(files.iter().all(|p| p.components().all(|c| c.as_os_str() != "fixtures")));
    }
}
