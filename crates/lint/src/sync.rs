//! L10/L11 — the concurrency-protocol pass.
//!
//! The hot path has run through hand-rolled lock-free code since the span
//! ring landed: a seqlock per slot in `obs::trace`, Relaxed telemetry
//! counters everywhere, a chunk-claiming thread pool in `shims/rayon`,
//! and a pool registry behind a `Mutex` in `pipeline::executor`. None of
//! that can be exercised reliably by tests on a small container — a
//! missing fence loses a happens-before edge only on hardware weak enough
//! (and loaded enough) to reorder the stores. So the invariants are
//! checked structurally, over the same token stream the other rules use:
//!
//! - **L10 atomics discipline**: every atomic field/static/local is
//!   inventoried; a Release-strength publish must have an
//!   Acquire-strength consumer on the same atomic somewhere in the
//!   workspace (and vice versa); a `Relaxed` store on an atomic that is
//!   consumed with Acquire elsewhere is flagged; a `fetch_*`
//!   read-modify-write whose *result is consumed* under `Relaxed` must
//!   carry an audited `allow(sync, …)` proof that it is a pure counter;
//!   a branch guarded by a Relaxed load must not read non-atomic shared
//!   fields; and the seqlock write/read brackets are verified shape-wise
//!   (odd store before the payload, `fence(Release)` between them,
//!   even `store(Release)` after, Acquire + `fence(Acquire)` around the
//!   reader's re-check).
//! - **L11 lock discipline**: no guard returned by `lock()`/`try_lock()`
//!   may stay live across a `par_*`/`pool.install`/blocking-IO call; the
//!   workspace lock-acquisition-order graph must be acyclic (each cycle
//!   is reported once, with every hop's site); and `lock()` results must
//!   use the `PoisonError::into_inner` recovery idiom instead of
//!   `unwrap`/`expect`.
//!
//! Like the other passes this is deliberately approximate in documented
//! ways: atomics are identified by *name* workspace-wide (a `seq` field
//! in one crate pairs with a `seq` field in another), receivers are the
//! single identifier before the field, and guard liveness runs to the
//! closing brace of the binding's enclosing block (an `if let` guard is
//! over-approximated to that same block). The approximations all err
//! toward reporting; every finding can be audited away with
//! `lint: allow(sync, "<proof>")`.

use crate::lex::{in_ranges, Lexed, Tok};
use crate::parse::ParsedFile;
use std::collections::{BTreeMap, BTreeSet};

/// One file as the sync pass sees it — borrowed from the linter's
/// per-file `Prepared` state.
pub(crate) struct SyncInput<'a> {
    /// Workspace-relative path.
    pub rel: &'a str,
    /// Token stream.
    pub lexed: &'a Lexed,
    /// `#[cfg(test)]` line ranges — test code is exempt.
    pub tests: &'a [(u32, u32)],
    /// Parsed items (fn bodies drive the per-function analyses).
    pub parsed: &'a ParsedFile,
}

/// Which of the two concurrency rules a finding belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SyncRule {
    /// L10 — atomics discipline.
    Atomics,
    /// L11 — lock discipline.
    Locks,
}

/// One L10/L11 finding, to be mapped onto [`crate::findings::Finding`].
#[derive(Debug)]
pub(crate) struct SyncFinding {
    pub rel: String,
    pub line: u32,
    pub rule: SyncRule,
    pub message: String,
}

/// Atomic integer/bool types from `std::sync::atomic`.
const ATOMIC_TYPES: &[&str] = &[
    "AtomicBool",
    "AtomicI16",
    "AtomicI32",
    "AtomicI64",
    "AtomicI8",
    "AtomicIsize",
    "AtomicU16",
    "AtomicU32",
    "AtomicU64",
    "AtomicU8",
    "AtomicUsize",
];

/// Blocking lock types whose guards L11 tracks.
const LOCK_TYPES: &[&str] = &["Mutex", "RwLock"];

/// Other synchronization-bearing type heads — never "plain shared data".
const SYNC_TYPES: &[&str] = &["Condvar", "LazyLock", "OnceCell", "OnceLock", "PhantomData"];

/// Read-modify-write methods on the atomic types.
const RMW_METHODS: &[&str] = &[
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_and",
    "fetch_max",
    "fetch_min",
    "fetch_or",
    "fetch_sub",
    "fetch_update",
    "fetch_xor",
    "swap",
];

/// Calls a `MutexGuard` must never be live across: fan-out into the
/// thread pool (a worker contending on the same lock deadlocks the pool)
/// and blocking filesystem IO (the guard pins every other thread for the
/// duration of the syscall).
const FAN_OUT_CALLS: &[&str] = &[
    "install",
    "into_par_iter",
    "par_bridge",
    "par_chunks",
    "par_iter",
    "par_iter_mut",
    "read_dir",
    "read_to_string",
    "run_chunked",
    "sync_all",
    "write_all",
];

/// A memory ordering as written at a call site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ordn {
    Relaxed,
    Acquire,
    Release,
    AcqRel,
    SeqCst,
}

impl Ordn {
    fn parse(s: &str) -> Option<Ordn> {
        Some(match s {
            "Relaxed" => Ordn::Relaxed,
            "Acquire" => Ordn::Acquire,
            "Release" => Ordn::Release,
            "AcqRel" => Ordn::AcqRel,
            "SeqCst" => Ordn::SeqCst,
            _ => return None,
        })
    }

    fn name(self) -> &'static str {
        match self {
            Ordn::Relaxed => "Relaxed",
            Ordn::Acquire => "Acquire",
            Ordn::Release => "Release",
            Ordn::AcqRel => "AcqRel",
            Ordn::SeqCst => "SeqCst",
        }
    }
}

/// What an atomic access does to its cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Load,
    Store,
    Rmw,
}

/// One atomic access site: `recv.name.method(…, Ordering::X)`.
#[derive(Debug)]
struct Access {
    file: usize,
    line: u32,
    /// Index of the method-name token.
    tok: usize,
    /// Index of the call's closing `)`.
    end: usize,
    /// The single identifier before the field, if any (`slot`, `self`).
    recv: Option<String>,
    /// The atomic's field/static/local name.
    name: String,
    method: String,
    op: Op,
    ordering: Ordn,
    /// `true` when the call's result is observed (let-bound or used in a
    /// larger expression) rather than discarded in statement position.
    consumed: bool,
    in_test: bool,
}

/// A standalone `fence(Ordering::X)` call.
#[derive(Debug)]
struct FenceSite {
    tok: usize,
    ordering: Ordn,
}

/// Where an atomic or lock was declared.
#[derive(Debug)]
struct Decl {
    file: usize,
    line: u32,
    kind: &'static str,
    ty: String,
}

/// Workspace-wide name inventory: atomics, locks, and the plain
/// (non-synchronized) struct fields the taint check protects.
#[derive(Default)]
struct Inventory {
    atomics: BTreeMap<String, Vec<Decl>>,
    locks: BTreeMap<String, Vec<Decl>>,
    plain_fields: BTreeSet<String>,
}

/// Run the whole L10/L11 pass over one batch of files.
pub(crate) fn check_sync(inputs: &[SyncInput]) -> Vec<SyncFinding> {
    let inv = build_inventory(inputs);
    let mut accesses: Vec<Vec<Access>> = Vec::new();
    let mut fences: Vec<Vec<FenceSite>> = Vec::new();
    for (fi, inp) in inputs.iter().enumerate() {
        let (a, f) = collect_accesses(fi, inp);
        accesses.push(a);
        fences.push(f);
    }

    let mut out = Vec::new();
    let bracket_fields = check_seqlock_brackets(inputs, &accesses, &fences, &mut out);
    check_pairing(inputs, &accesses, &bracket_fields, &mut out);
    check_consumed_relaxed_rmw(inputs, &accesses, &mut out);
    check_relaxed_guard_taint(inputs, &accesses, &inv, &mut out);
    check_lock_discipline(inputs, &mut out);
    out
}

// --- token utilities ----------------------------------------------------

/// Index of the closer matching the opener at `open` (`(`/`[`/`{`).
fn match_fwd(lexed: &Lexed, open: usize) -> usize {
    let (o, c) = match lexed.tokens[open].tok {
        Tok::Punct('(') => ('(', ')'),
        Tok::Punct('[') => ('[', ']'),
        _ => ('{', '}'),
    };
    let mut depth = 0i32;
    for j in open..lexed.tokens.len() {
        if lexed.is_punct(j, o) {
            depth += 1;
        } else if lexed.is_punct(j, c) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    lexed.tokens.len().saturating_sub(1)
}

/// Index of the opener matching the closer at `close` (`)`/`]`/`}`).
fn match_back(lexed: &Lexed, close: usize) -> usize {
    let (o, c) = match lexed.tokens[close].tok {
        Tok::Punct(')') => ('(', ')'),
        Tok::Punct(']') => ('[', ']'),
        _ => ('{', '}'),
    };
    let mut depth = 0i32;
    for j in (0..=close).rev() {
        if lexed.is_punct(j, c) {
            depth += 1;
        } else if lexed.is_punct(j, o) {
            depth -= 1;
            if depth == 0 {
                return j;
            }
        }
    }
    0
}

/// Walk a `a.b(..).c` receiver chain leftward from `idx` to its first
/// token — used to decide statement position and to find the binding.
fn chain_start(lexed: &Lexed, idx: usize) -> usize {
    let mut k = idx;
    while k >= 2 && lexed.is_punct(k - 1, '.') {
        match lexed.tokens[k - 2].tok {
            Tok::Ident(_) => k -= 2,
            Tok::Punct(')') | Tok::Punct(']') => {
                let open = match_back(lexed, k - 2);
                if open >= 1 && matches!(lexed.tokens[open - 1].tok, Tok::Ident(_)) {
                    k = open - 1;
                } else {
                    k = open;
                    break;
                }
            }
            _ => break,
        }
    }
    k
}

/// The single identifier receiver before `name_idx . method`, walking
/// back over one `[...]`/`(...)` group (`buckets[i].fetch_add`).
fn field_before_dot(lexed: &Lexed, dot: usize) -> Option<(usize, String)> {
    if dot == 0 {
        return None;
    }
    let mut j = dot - 1;
    if matches!(lexed.tokens[j].tok, Tok::Punct(')') | Tok::Punct(']')) {
        let open = match_back(lexed, j);
        if open == 0 {
            return None;
        }
        j = open - 1;
    }
    lexed.ident(j).map(|n| (j, n.to_owned()))
}

/// First `Ordering` variant identifier strictly inside a call's argument
/// list — for `compare_exchange` this is the success ordering.
fn first_ordering(lexed: &Lexed, open: usize, close: usize) -> Option<Ordn> {
    ((open + 1)..close).find_map(|j| lexed.ident(j).and_then(Ordn::parse))
}

// --- access collection --------------------------------------------------

fn collect_accesses(fi: usize, inp: &SyncInput) -> (Vec<Access>, Vec<FenceSite>) {
    let lexed = inp.lexed;
    let mut accs = Vec::new();
    let mut fens = Vec::new();
    for i in 0..lexed.tokens.len() {
        let Some(m) = lexed.ident(i) else { continue };
        if !lexed.is_punct(i + 1, '(') {
            continue;
        }
        let close = match_fwd(lexed, i + 1);
        if m == "fence" && !lexed.is_punct(i.wrapping_sub(1), '.') {
            if let Some(ord) = first_ordering(lexed, i + 1, close) {
                fens.push(FenceSite { tok: i, ordering: ord });
            }
            continue;
        }
        let op = match m {
            "load" => Op::Load,
            "store" => Op::Store,
            m if RMW_METHODS.contains(&m) => Op::Rmw,
            _ => continue,
        };
        if i < 2 || !lexed.is_punct(i - 1, '.') {
            continue;
        }
        // Only calls that pass a memory ordering are atomic accesses —
        // this is what separates `cell.store(v, Ordering::Release)` from
        // an unrelated method that happens to be called `store`.
        let Some(ordering) = first_ordering(lexed, i + 1, close) else { continue };
        let Some((name_idx, name)) = field_before_dot(lexed, i - 1) else { continue };
        let recv = if name_idx >= 2 && lexed.is_punct(name_idx - 1, '.') {
            lexed.ident(name_idx - 2).map(str::to_owned)
        } else {
            None
        };
        let cs = chain_start(lexed, name_idx);
        let stmt_start = cs == 0
            || matches!(
                lexed.tokens[cs - 1].tok,
                Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}')
            );
        let consumed = !(stmt_start && lexed.is_punct(close + 1, ';'));
        let line = lexed.tokens[i].line;
        accs.push(Access {
            file: fi,
            line,
            tok: i,
            end: close,
            recv,
            name,
            method: m.to_owned(),
            op,
            ordering,
            consumed,
            in_test: in_ranges(inp.tests, line),
        });
    }
    (accs, fens)
}

// --- inventory ----------------------------------------------------------

fn build_inventory(inputs: &[SyncInput]) -> Inventory {
    let mut inv = Inventory::default();
    for (fi, inp) in inputs.iter().enumerate() {
        scan_struct_fields(fi, inp, &mut inv);
        scan_statics_and_locals(fi, inp, &mut inv);
    }
    let taken: BTreeSet<String> = inv.atomics.keys().chain(inv.locks.keys()).cloned().collect();
    inv.plain_fields.retain(|n| !taken.contains(n));
    inv
}

/// Classify one type region by the identifiers it contains. Returns the
/// matched sync type, or `None` for plain data.
fn classify_type(lexed: &Lexed, from: usize, to: usize) -> Option<(&'static str, String)> {
    for j in from..to {
        if let Some(w) = lexed.ident(j) {
            if let Some(t) = ATOMIC_TYPES.iter().find(|t| **t == w) {
                return Some(("atomic", (*t).to_owned()));
            }
            if let Some(t) = LOCK_TYPES.iter().find(|t| **t == w) {
                return Some(("lock", (*t).to_owned()));
            }
            if SYNC_TYPES.contains(&w) {
                return Some(("sync", w.to_owned()));
            }
        }
    }
    None
}

fn record_decl(inv: &mut Inventory, class: Option<(&'static str, String)>, name: &str, d: Decl) {
    match class {
        Some(("atomic", ty)) => {
            inv.atomics.entry(name.to_owned()).or_default().push(Decl { ty, ..d })
        }
        Some(("lock", ty)) => inv.locks.entry(name.to_owned()).or_default().push(Decl { ty, ..d }),
        Some(_) => {}
        None => {
            if d.kind == "field" {
                inv.plain_fields.insert(name.to_owned());
            }
        }
    }
}

fn scan_struct_fields(fi: usize, inp: &SyncInput, inv: &mut Inventory) {
    let lexed = inp.lexed;
    let toks = &lexed.tokens;
    let mut i = 0usize;
    while i < toks.len() {
        if lexed.ident(i) != Some("struct") || lexed.ident(i + 1).is_none() {
            i += 1;
            continue;
        }
        if in_ranges(inp.tests, toks[i].line) {
            i += 1;
            continue;
        }
        // Find the `{` of a braced struct; tuple structs and unit structs
        // hit `(` or `;` first and are skipped.
        let mut j = i + 2;
        let mut angle = 0i32;
        loop {
            match toks.get(j).map(|t| &t.tok) {
                Some(Tok::Punct('<')) => angle += 1,
                Some(Tok::Punct('>')) => angle -= 1,
                Some(Tok::Punct('{')) if angle <= 0 => break,
                Some(Tok::Punct('(')) | Some(Tok::Punct(';')) | None => {
                    j = usize::MAX;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        if j == usize::MAX {
            i += 1;
            continue;
        }
        let close = match_fwd(lexed, j);
        let mut k = j + 1;
        while k < close {
            // A field is `name :` at struct-body depth, preceded by `{`,
            // `,` or a visibility modifier.
            let is_field = lexed.ident(k).is_some()
                && lexed.is_punct(k + 1, ':')
                && !lexed.is_punct(k + 2, ':')
                && (lexed.is_punct(k - 1, '{')
                    || lexed.is_punct(k - 1, ',')
                    || lexed.is_punct(k - 1, ')')
                    || lexed.ident(k - 1) == Some("pub"));
            if !is_field {
                k += 1;
                continue;
            }
            let name = lexed.ident(k).unwrap().to_owned();
            // Type region: to the `,` at field depth or the struct close.
            let mut end = k + 2;
            let mut depth = 0i32;
            while end < close {
                match toks[end].tok {
                    Tok::Punct('<') | Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                    Tok::Punct('>') | Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                    Tok::Punct(',') if depth <= 0 => break,
                    _ => {}
                }
                end += 1;
            }
            let class = classify_type(lexed, k + 2, end);
            let d = Decl { file: fi, line: toks[k].line, kind: "field", ty: String::new() };
            record_decl(inv, class, &name, d);
            k = end + 1;
        }
        i = close + 1;
    }
}

fn scan_statics_and_locals(fi: usize, inp: &SyncInput, inv: &mut Inventory) {
    let lexed = inp.lexed;
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if in_ranges(inp.tests, toks[i].line) {
            continue;
        }
        match lexed.ident(i) {
            Some("static") => {
                let mut j = i + 1;
                if lexed.ident(j) == Some("mut") {
                    j += 1;
                }
                let Some(name) = lexed.ident(j) else { continue };
                if !lexed.is_punct(j + 1, ':') {
                    continue;
                }
                let mut end = j + 2;
                while end < toks.len() && !lexed.is_punct(end, '=') && !lexed.is_punct(end, ';') {
                    end += 1;
                }
                let class = classify_type(lexed, j + 2, end);
                let d = Decl { file: fi, line: toks[i].line, kind: "static", ty: String::new() };
                record_decl(inv, class, name, d);
            }
            Some("let") => {
                let mut j = i + 1;
                if lexed.ident(j) == Some("mut") {
                    j += 1;
                }
                let Some(name) = lexed.ident(j) else { continue };
                if !lexed.is_punct(j + 1, '=') {
                    continue;
                }
                let mut end = j + 2;
                let mut depth = 0i32;
                while end < toks.len() {
                    match toks[end].tok {
                        Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
                        Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
                        Tok::Punct(';') if depth <= 0 => break,
                        _ => {}
                    }
                    end += 1;
                }
                let class = classify_type(lexed, j + 2, end);
                if class.is_some() {
                    let d = Decl { file: fi, line: toks[i].line, kind: "local", ty: String::new() };
                    record_decl(inv, class, name, d);
                }
            }
            _ => {}
        }
    }
}

// --- L10: seqlock brackets ----------------------------------------------

/// A detected bracket owns every verdict on its sequence field: the
/// pairing pass skips these names so a demoted close produces exactly one
/// finding (the bracket one), not a cascade.
fn check_seqlock_brackets(
    inputs: &[SyncInput],
    accesses: &[Vec<Access>],
    fences: &[Vec<FenceSite>],
    out: &mut Vec<SyncFinding>,
) -> BTreeSet<String> {
    let mut bracket_fields = BTreeSet::new();
    for (fi, inp) in inputs.iter().enumerate() {
        for f in &inp.parsed.fns {
            if f.is_test {
                continue;
            }
            let Some((bs, be)) = f.body else { continue };
            let in_body: Vec<&Access> =
                accesses[fi].iter().filter(|a| a.tok >= bs && a.tok < be && !a.in_test).collect();
            writer_brackets(inp, &in_body, &fences[fi], &mut bracket_fields, out);
            reader_brackets(inp, &in_body, &fences[fi], &mut bracket_fields, out);
        }
    }
    bracket_fields
}

fn site(recv: &Option<String>, name: &str) -> String {
    match recv {
        Some(r) => format!("{r}.{name}"),
        None => name.to_owned(),
    }
}

fn writer_brackets(
    inp: &SyncInput,
    in_body: &[&Access],
    fences: &[FenceSite],
    bracket_fields: &mut BTreeSet<String>,
    out: &mut Vec<SyncFinding>,
) {
    let writes: Vec<&Access> = in_body.iter().filter(|a| a.op != Op::Load).copied().collect();
    let mut by_cell: BTreeMap<(Option<&str>, &str), Vec<&Access>> = BTreeMap::new();
    for a in &writes {
        by_cell.entry((a.recv.as_deref(), a.name.as_str())).or_default().push(a);
    }
    for ((recv, name), seq_writes) in &by_cell {
        if seq_writes.len() < 2 {
            continue;
        }
        let open = seq_writes[0];
        let close = *seq_writes.last().unwrap();
        // The sequence close is the *final* write to its receiver — a
        // payload field that merely happens to be written twice (with
        // other stores interleaved) is not the bracket owner.
        let last_write_to_recv = writes
            .iter()
            .filter(|a| a.recv.as_deref() == *recv)
            .map(|a| a.tok)
            .max()
            .unwrap_or(close.tok);
        if close.tok != last_write_to_recv {
            continue;
        }
        let payload: Vec<&Access> = writes
            .iter()
            .filter(|a| {
                a.recv.as_deref() == *recv
                    && a.name != *name
                    && a.tok > open.tok
                    && a.tok < close.tok
            })
            .copied()
            .collect();
        if payload.is_empty() {
            continue;
        }
        bracket_fields.insert((*name).to_owned());
        let cell = site(&open.recv, name);
        let mut push = |line: u32, message: String| {
            out.push(SyncFinding {
                rel: inp.rel.to_owned(),
                line,
                rule: SyncRule::Atomics,
                message,
            });
        };
        // Payload fields written before the bracket opens.
        let payload_names: BTreeSet<&str> = payload.iter().map(|a| a.name.as_str()).collect();
        for a in &writes {
            if a.recv.as_deref() == *recv
                && payload_names.contains(a.name.as_str())
                && a.tok < open.tok
            {
                push(
                    a.line,
                    format!(
                        "payload field `{}` is written before the seqlock bracket on `{cell}` \
                         opens — a reader can observe the new payload under the old (even) \
                         sequence",
                        site(&a.recv, &a.name)
                    ),
                );
            }
        }
        // The open: a plain odd store, Relaxed + fence(Release).
        if open.op == Op::Rmw {
            push(
                open.line,
                format!(
                    "seqlock bracket on `{cell}` opens with `{}`; a read-modify-write open \
                     lets two concurrent writers make the sequence even mid-write — open \
                     with a plain `store` of an odd lap-derived value",
                    open.method
                ),
            );
        } else {
            match open.ordering {
                Ordn::Relaxed => {
                    let first_payload = payload[0];
                    let fenced = fences.iter().any(|fe| {
                        fe.tok > open.end
                            && fe.tok < first_payload.tok
                            && matches!(fe.ordering, Ordn::Release | Ordn::AcqRel | Ordn::SeqCst)
                    });
                    if !fenced {
                        push(
                            open.line,
                            format!(
                                "seqlock bracket on `{cell}` opens with `store(Relaxed)` but \
                                 no `fence(Release)` before the payload writes — the odd \
                                 sequence may become visible only after the payload"
                            ),
                        );
                    }
                }
                ord => {
                    push(
                        open.line,
                        format!(
                            "seqlock bracket on `{cell}` opens with `store({})`, which does \
                             not order the payload writes that follow it — use \
                             `store(Relaxed)` followed by `fence(Release)`",
                            ord.name()
                        ),
                    );
                }
            }
        }
        // The close: a plain even store with Release strength.
        if close.op == Op::Rmw {
            push(
                close.line,
                format!(
                    "seqlock bracket on `{cell}` closes with `{}`; close with a plain \
                     `store(Release)` of the even lap value so a concurrent writer cannot \
                     re-even a torn slot",
                    close.method
                ),
            );
        } else if !matches!(close.ordering, Ordn::Release | Ordn::SeqCst) {
            push(
                close.line,
                format!(
                    "seqlock bracket on `{cell}` must close with `store(Release)`; \
                     `store({})` does not order the payload writes before the sequence \
                     close, so a reader can accept a torn span",
                    close.ordering.name()
                ),
            );
        }
    }
}

fn reader_brackets(
    inp: &SyncInput,
    in_body: &[&Access],
    fences: &[FenceSite],
    bracket_fields: &mut BTreeSet<String>,
    out: &mut Vec<SyncFinding>,
) {
    let loads: Vec<&Access> = in_body.iter().filter(|a| a.op == Op::Load).copied().collect();
    let mut by_cell: BTreeMap<(Option<&str>, &str), Vec<&Access>> = BTreeMap::new();
    for a in &loads {
        by_cell.entry((a.recv.as_deref(), a.name.as_str())).or_default().push(a);
    }
    for ((recv, name), seq_loads) in &by_cell {
        if seq_loads.len() < 2 {
            continue;
        }
        let first = seq_loads[0];
        let recheck = *seq_loads.last().unwrap();
        // Symmetric to the writer: the re-check is the final load from
        // its receiver, so a twice-read payload field is not mistaken
        // for the sequence cell.
        let last_load_from_recv = loads
            .iter()
            .filter(|a| a.recv.as_deref() == *recv)
            .map(|a| a.tok)
            .max()
            .unwrap_or(recheck.tok);
        if recheck.tok != last_load_from_recv {
            continue;
        }
        let payload: Vec<&Access> = loads
            .iter()
            .filter(|a| {
                a.recv.as_deref() == *recv
                    && a.name != *name
                    && a.tok > first.tok
                    && a.tok < recheck.tok
            })
            .copied()
            .collect();
        if payload.is_empty() {
            continue;
        }
        bracket_fields.insert((*name).to_owned());
        let cell = site(&first.recv, name);
        let mut push = |line: u32, message: String| {
            out.push(SyncFinding {
                rel: inp.rel.to_owned(),
                line,
                rule: SyncRule::Atomics,
                message,
            });
        };
        if !matches!(first.ordering, Ordn::Acquire | Ordn::SeqCst) {
            push(
                first.line,
                format!(
                    "seqlock reader of `{cell}`: the first sequence load must be \
                     `Acquire` (found `{}`) — without it the payload loads can float \
                     above the sequence check",
                    first.ordering.name()
                ),
            );
        }
        if !matches!(recheck.ordering, Ordn::Acquire | Ordn::SeqCst) {
            push(
                recheck.line,
                format!(
                    "seqlock reader of `{cell}`: the sequence re-check must load with \
                     `Acquire` (found `{}`)",
                    recheck.ordering.name()
                ),
            );
        }
        let last_payload = payload.last().unwrap();
        let fenced = fences.iter().any(|fe| {
            fe.tok > last_payload.end
                && fe.tok < recheck.tok
                && matches!(fe.ordering, Ordn::Acquire | Ordn::AcqRel | Ordn::SeqCst)
        });
        if !fenced {
            push(
                recheck.line,
                format!(
                    "seqlock reader of `{cell}`: add `fence(Acquire)` between the payload \
                     loads and the sequence re-check — without it the Relaxed payload \
                     loads can be reordered past the re-check and a torn read accepted"
                ),
            );
        }
    }
}

// --- L10: Release/Acquire pairing ---------------------------------------

fn is_release_write(a: &Access) -> bool {
    match a.op {
        Op::Store => matches!(a.ordering, Ordn::Release | Ordn::SeqCst),
        Op::Rmw => matches!(a.ordering, Ordn::Release | Ordn::AcqRel | Ordn::SeqCst),
        Op::Load => false,
    }
}

fn is_acquire_read(a: &Access) -> bool {
    match a.op {
        Op::Load => matches!(a.ordering, Ordn::Acquire | Ordn::SeqCst),
        Op::Rmw => matches!(a.ordering, Ordn::Acquire | Ordn::AcqRel | Ordn::SeqCst),
        Op::Store => false,
    }
}

fn check_pairing(
    inputs: &[SyncInput],
    accesses: &[Vec<Access>],
    bracket_fields: &BTreeSet<String>,
    out: &mut Vec<SyncFinding>,
) {
    let mut by_name: BTreeMap<&str, Vec<&Access>> = BTreeMap::new();
    for accs in accesses {
        for a in accs {
            if !a.in_test && !bracket_fields.contains(&a.name) {
                by_name.entry(a.name.as_str()).or_default().push(a);
            }
        }
    }
    for (name, accs) in &by_name {
        let releases: Vec<&&Access> = accs.iter().filter(|a| is_release_write(a)).collect();
        let acquires: Vec<&&Access> = accs.iter().filter(|a| is_acquire_read(a)).collect();
        let relaxed_writes: Vec<&&Access> =
            accs.iter().filter(|a| a.op != Op::Load && a.ordering == Ordn::Relaxed).collect();

        if !acquires.is_empty() {
            // The field participates in a publish protocol: every Relaxed
            // write is a hole in it. (A consumed Relaxed RMW is reported
            // by the dedicated RMW check instead.)
            for w in &relaxed_writes {
                if w.op == Op::Rmw && w.consumed {
                    continue;
                }
                out.push(SyncFinding {
                    rel: inputs[w.file].rel.to_owned(),
                    line: w.line,
                    rule: SyncRule::Atomics,
                    message: format!(
                        "`{}.{}(…, Relaxed)` publishes `{name}`, which is consumed with \
                         Acquire elsewhere ({}:{}) — a reader can observe the new value \
                         without the writes that preceded it; use Release ordering",
                        site(&w.recv, &w.name),
                        w.method,
                        inputs[acquires[0].file].rel,
                        acquires[0].line
                    ),
                });
            }
            if releases.is_empty() && relaxed_writes.is_empty() {
                for a in &acquires {
                    out.push(SyncFinding {
                        rel: inputs[a.file].rel.to_owned(),
                        line: a.line,
                        rule: SyncRule::Atomics,
                        message: format!(
                            "`{}.{}(Acquire)` has no Release-strength publish on `{name}` \
                             anywhere in the workspace — the acquire synchronizes with \
                             nothing; pair it with `store(Release)` or drop to Relaxed \
                             with an `allow(sync, …)` proof",
                            site(&a.recv, &a.name),
                            a.method
                        ),
                    });
                }
            }
        }
        if !releases.is_empty() && acquires.is_empty() {
            for r in &releases {
                out.push(SyncFinding {
                    rel: inputs[r.file].rel.to_owned(),
                    line: r.line,
                    rule: SyncRule::Atomics,
                    message: format!(
                        "`{}.{}(…, Release)` publishes `{name}` but no Acquire-strength \
                         load reads it anywhere in the workspace — the release pairs with \
                         nothing; add the `load(Acquire)` consumer or downgrade \
                         deliberately with an `allow(sync, …)` proof",
                        site(&r.recv, &r.name),
                        r.method
                    ),
                });
            }
        }
    }
}

// --- L10: consumed Relaxed RMW ------------------------------------------

fn check_consumed_relaxed_rmw(
    inputs: &[SyncInput],
    accesses: &[Vec<Access>],
    out: &mut Vec<SyncFinding>,
) {
    for accs in accesses {
        for a in accs {
            if a.in_test || a.op != Op::Rmw || a.ordering != Ordn::Relaxed || !a.consumed {
                continue;
            }
            out.push(SyncFinding {
                rel: inputs[a.file].rel.to_owned(),
                line: a.line,
                rule: SyncRule::Atomics,
                message: format!(
                    "the result of `{}.{}(…, Relaxed)` is consumed — a read-modify-write \
                     whose value is observed participates in a protocol; pair the ordering \
                     (`AcqRel`, or `Release` + an Acquire load) or prove it is a pure \
                     counter with `lint: allow(sync, \"<proof>\")`",
                    site(&a.recv, &a.name),
                    a.method
                ),
            });
        }
    }
}

// --- L10: Relaxed-guard taint -------------------------------------------

fn check_relaxed_guard_taint(
    inputs: &[SyncInput],
    accesses: &[Vec<Access>],
    inv: &Inventory,
    out: &mut Vec<SyncFinding>,
) {
    for (fi, inp) in inputs.iter().enumerate() {
        let lexed = inp.lexed;
        let relaxed_reads: Vec<&Access> = accesses[fi]
            .iter()
            .filter(|a| !a.in_test && a.ordering == Ordn::Relaxed && a.op != Op::Store)
            .collect();
        if relaxed_reads.is_empty() {
            continue;
        }
        for f in &inp.parsed.fns {
            if f.is_test {
                continue;
            }
            let Some((bs, be)) = f.body else { continue };
            // Variables let-bound from a Relaxed load/RMW in this body.
            let mut tainted: BTreeSet<&str> = BTreeSet::new();
            let mut i = bs;
            while i < be {
                if lexed.ident(i) == Some("let") {
                    let mut j = i + 1;
                    if lexed.ident(j) == Some("mut") {
                        j += 1;
                    }
                    if let Some(v) = lexed.ident(j) {
                        if lexed.is_punct(j + 1, '=') {
                            let mut end = j + 2;
                            let mut depth = 0i32;
                            while end < be {
                                match lexed.tokens[end].tok {
                                    Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => {
                                        depth += 1
                                    }
                                    Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => {
                                        depth -= 1
                                    }
                                    Tok::Punct(';') if depth <= 0 => break,
                                    _ => {}
                                }
                                end += 1;
                            }
                            if relaxed_reads.iter().any(|a| a.tok > j && a.tok < end) {
                                tainted.insert(v);
                            }
                            i = end;
                        }
                    }
                }
                i += 1;
            }
            // Branch conditions that observe a Relaxed value, and the
            // plain-field reads inside the blocks they guard.
            let mut i = bs;
            while i < be {
                let kw = lexed.ident(i);
                if kw != Some("if") && kw != Some("while") {
                    i += 1;
                    continue;
                }
                let mut j = i + 1;
                let mut depth = 0i32;
                while j < be {
                    match lexed.tokens[j].tok {
                        Tok::Punct('(') | Tok::Punct('[') => depth += 1,
                        Tok::Punct(')') | Tok::Punct(']') => depth -= 1,
                        Tok::Punct('{') if depth <= 0 => break,
                        _ => {}
                    }
                    j += 1;
                }
                if j >= be {
                    break;
                }
                let cond_tainted = relaxed_reads.iter().any(|a| a.tok > i && a.tok < j)
                    || ((i + 1)..j).any(|t| lexed.ident(t).is_some_and(|w| tainted.contains(w)));
                if !cond_tainted {
                    i = j + 1;
                    continue;
                }
                let block_end = match_fwd(lexed, j);
                let mut seen: BTreeSet<(u32, String)> = BTreeSet::new();
                for q in (j + 1)..block_end {
                    let Some(field) = lexed.ident(q) else { continue };
                    if !inv.plain_fields.contains(field)
                        || !lexed.is_punct(q - 1, '.')
                        || lexed.ident(q.wrapping_sub(2)).is_none()
                        || lexed.is_punct(q + 1, '(')
                    {
                        continue;
                    }
                    let line = lexed.tokens[q].line;
                    if !seen.insert((line, field.to_owned())) {
                        continue;
                    }
                    out.push(SyncFinding {
                        rel: inp.rel.to_owned(),
                        line,
                        rule: SyncRule::Atomics,
                        message: format!(
                            "this branch is guarded by a Relaxed atomic read but reads the \
                             non-atomic field `{field}` — Relaxed creates no happens-before \
                             edge, so the field may be stale or torn; load the guard with \
                             Acquire (paired with a Release publish) or prove independence \
                             with `lint: allow(sync, \"<proof>\")`"
                        ),
                    });
                }
                i = j + 1;
            }
        }
    }
}

// --- L11: lock discipline -----------------------------------------------

/// One `…lock()`/`…try_lock()` call site.
struct LockAcq {
    tok: usize,
    end: usize,
    line: u32,
    lock: String,
    method: String,
}

fn check_lock_discipline(inputs: &[SyncInput], out: &mut Vec<SyncFinding>) {
    // Acquisition-order edges: lock A held while lock B is taken.
    let mut edges: BTreeMap<(String, String), (usize, u32)> = BTreeMap::new();
    for (fi, inp) in inputs.iter().enumerate() {
        let lexed = inp.lexed;
        for f in &inp.parsed.fns {
            if f.is_test || in_ranges(inp.tests, f.line) {
                continue;
            }
            let Some((bs, be)) = f.body else { continue };
            let acqs = collect_lock_acqs(lexed, bs, be);
            for a in &acqs {
                check_poison_parity(inp, lexed, a, out);
            }
            for a in &acqs {
                let Some((guard, stmt_end)) = guard_binding(lexed, a, bs) else { continue };
                let live_end = liveness_end(lexed, &guard, stmt_end, be);
                // Fan-out calls while the guard is live.
                for c in (stmt_end + 1)..live_end {
                    let Some(callee) = lexed.ident(c) else { continue };
                    if !FAN_OUT_CALLS.contains(&callee) || !lexed.is_punct(c + 1, '(') {
                        continue;
                    }
                    out.push(SyncFinding {
                        rel: inp.rel.to_owned(),
                        line: lexed.tokens[c].line,
                        rule: SyncRule::Locks,
                        message: format!(
                            "`{guard}` (the `{}` guard acquired on line {}) is still live \
                             across `{callee}(…)` — a pool worker contending on the same \
                             lock deadlocks the fan-out, and blocking IO pins every other \
                             thread for the syscall; `drop({guard})` first",
                            a.lock, a.line
                        ),
                    });
                }
                // Nested acquisitions while the guard is live -> order edges.
                for b in &acqs {
                    if b.tok > stmt_end && b.tok < live_end && b.lock != a.lock {
                        edges.entry((a.lock.clone(), b.lock.clone())).or_insert((fi, b.line));
                    }
                }
            }
        }
    }
    report_lock_cycles(inputs, &edges, out);
}

fn collect_lock_acqs(lexed: &Lexed, bs: usize, be: usize) -> Vec<LockAcq> {
    let mut acqs = Vec::new();
    for i in bs..be {
        let Some(m) = lexed.ident(i) else { continue };
        if (m != "lock" && m != "try_lock") || !lexed.is_punct(i + 1, '(') {
            continue;
        }
        if i < 2 || !lexed.is_punct(i - 1, '.') {
            continue;
        }
        let Some((_, lock)) = field_before_dot(lexed, i - 1) else { continue };
        let end = match_fwd(lexed, i + 1);
        acqs.push(LockAcq { tok: i, end, line: lexed.tokens[i].line, lock, method: m.to_owned() });
    }
    acqs
}

/// The guard variable a lock call binds to, plus the index of the `;`
/// ending the binding statement. `None` for unbound temporaries (their
/// guard dies at the end of the statement).
fn guard_binding(lexed: &Lexed, a: &LockAcq, bs: usize) -> Option<(String, usize)> {
    // Walk back from the receiver chain to the statement start, looking
    // for `let`.
    let cs = chain_start(lexed, a.tok);
    let mut k = cs;
    let mut let_idx = None;
    while k > bs {
        k -= 1;
        match &lexed.tokens[k].tok {
            Tok::Punct(';') | Tok::Punct('{') | Tok::Punct('}') => break,
            Tok::Ident(w) if w == "let" => {
                let_idx = Some(k);
                break;
            }
            _ => {}
        }
    }
    let li = let_idx?;
    let mut j = li + 1;
    if lexed.ident(j) == Some("mut") {
        j += 1;
    }
    let mut name = lexed.ident(j)?;
    // `let Ok(mut g) = …` / `let Some(g) = …` patterns.
    if (name == "Ok" || name == "Some") && lexed.is_punct(j + 1, '(') {
        j += 2;
        if lexed.ident(j) == Some("mut") {
            j += 1;
        }
        name = lexed.ident(j)?;
    }
    // End of the binding statement: the `;` after the call (skipping any
    // trailing `.unwrap_or_else(…)` chain and let-else block).
    let mut e = a.end + 1;
    let mut depth = 0i32;
    while e < lexed.tokens.len() {
        match lexed.tokens[e].tok {
            Tok::Punct('(') | Tok::Punct('[') | Tok::Punct('{') => depth += 1,
            Tok::Punct(')') | Tok::Punct(']') | Tok::Punct('}') => depth -= 1,
            Tok::Punct(';') if depth <= 0 => break,
            _ => {}
        }
        e += 1;
    }
    Some((name.to_owned(), e))
}

/// Where the guard stops being live: `drop(guard)`, or the closing brace
/// of the binding's enclosing block.
fn liveness_end(lexed: &Lexed, guard: &str, stmt_end: usize, be: usize) -> usize {
    let mut depth = 0i32;
    let mut j = stmt_end + 1;
    while j < be {
        match &lexed.tokens[j].tok {
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                if depth == 0 {
                    return j;
                }
                depth -= 1;
            }
            Tok::Ident(w)
                if w == "drop"
                    && lexed.is_punct(j + 1, '(')
                    && lexed.ident(j + 2) == Some(guard)
                    && lexed.is_punct(j + 3, ')') =>
            {
                return j;
            }
            _ => {}
        }
        j += 1;
    }
    be
}

fn check_poison_parity(inp: &SyncInput, lexed: &Lexed, a: &LockAcq, out: &mut Vec<SyncFinding>) {
    if !lexed.is_punct(a.end + 1, '.') {
        return;
    }
    let Some(next) = lexed.ident(a.end + 2) else { return };
    if next != "unwrap" && next != "expect" {
        return;
    }
    let message = if a.method == "lock" {
        format!(
            "`.lock().{next}()` panics if the lock was poisoned by a panicking holder; \
             recover the guard with `.unwrap_or_else(std::sync::PoisonError::into_inner)` \
             — the protected state is only ever mutated under the lock, so it is \
             consistent even after a poison — or handle the `Err` explicitly"
        )
    } else {
        format!(
            "`.try_lock().{next}()` panics on plain contention (`WouldBlock`), which is \
             not an error; match on the result (`let Ok(g) = … else`) and treat a \
             contended lock as a skip"
        )
    };
    out.push(SyncFinding { rel: inp.rel.to_owned(), line: a.line, rule: SyncRule::Locks, message });
}

fn report_lock_cycles(
    inputs: &[SyncInput],
    edges: &BTreeMap<(String, String), (usize, u32)>,
    out: &mut Vec<SyncFinding>,
) {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (from, to) in edges.keys() {
        adj.entry(from).or_default().push(to);
    }
    // DFS from every node; cycles are canonicalized (rotated to start at
    // their smallest name) so each is reported exactly once.
    let mut seen_cycles: BTreeSet<Vec<String>> = BTreeSet::new();
    for &start in adj.keys() {
        let mut path: Vec<&str> = vec![start];
        dfs_cycles(&adj, &mut path, &mut seen_cycles);
    }
    for cycle in &seen_cycles {
        let mut hops = Vec::new();
        let mut anchor: Option<(usize, u32)> = None;
        for (i, held) in cycle.iter().enumerate() {
            let next = &cycle[(i + 1) % cycle.len()];
            if let Some(&(fi, line)) = edges.get(&(held.clone(), next.clone())) {
                if anchor.is_none() {
                    anchor = Some((fi, line));
                }
                hops.push(format!(
                    "`{next}.lock()` while holding `{held}` ({}:{line})",
                    inputs[fi].rel
                ));
            }
        }
        let Some((fi, line)) = anchor else { continue };
        let ring: Vec<&str> = cycle.iter().map(String::as_str).chain([cycle[0].as_str()]).collect();
        out.push(SyncFinding {
            rel: inputs[fi].rel.to_owned(),
            line,
            rule: SyncRule::Locks,
            message: format!(
                "lock-order cycle `{}`: {} — two threads entering the ring at different \
                 points deadlock; impose a single acquisition order or drop the first \
                 guard before taking the second",
                ring.join("` -> `"),
                hops.join("; ")
            ),
        });
    }
}

fn dfs_cycles<'a>(
    adj: &BTreeMap<&'a str, Vec<&'a str>>,
    path: &mut Vec<&'a str>,
    cycles: &mut BTreeSet<Vec<String>>,
) {
    let here = *path.last().unwrap();
    for &next in adj.get(here).into_iter().flatten() {
        if let Some(pos) = path.iter().position(|&n| n == next) {
            let cycle = &path[pos..];
            // Rotate so the smallest name leads.
            let min = cycle.iter().enumerate().min_by_key(|(_, n)| **n).map(|(i, _)| i).unwrap();
            let canon: Vec<String> =
                (0..cycle.len()).map(|i| cycle[(min + i) % cycle.len()].to_owned()).collect();
            cycles.insert(canon);
            continue;
        }
        if path.len() <= adj.len() {
            path.push(next);
            dfs_cycles(adj, path, cycles);
            path.pop();
        }
    }
}

// --- the --sync-report artifact -----------------------------------------

/// The `--sync-report` JSON artifact: the atomic inventory with every
/// non-test access, the lock inventory, and the lock-acquisition-order
/// edges. Hand-rolled and sorted like every other report in this crate,
/// so equal workspaces produce byte-identical artifacts.
pub(crate) fn report_json(inputs: &[SyncInput]) -> String {
    use crate::findings::json_str;

    let inv = build_inventory(inputs);
    let mut accesses: Vec<Vec<Access>> = Vec::new();
    for (fi, inp) in inputs.iter().enumerate() {
        accesses.push(collect_accesses(fi, inp).0);
    }
    // Group non-test accesses under the inventory names; accesses on
    // locals that never reached the inventory get their own entries.
    let mut by_name: BTreeMap<String, Vec<&Access>> = BTreeMap::new();
    for accs in &accesses {
        for a in accs {
            if !a.in_test {
                by_name.entry(a.name.clone()).or_default().push(a);
            }
        }
    }
    let mut edges: BTreeMap<(String, String), (usize, u32)> = BTreeMap::new();
    {
        let mut scratch = Vec::new();
        collect_edges_only(inputs, &mut edges, &mut scratch);
    }

    let mut out = String::from("{\n  \"version\": 1,\n  \"atomics\": [");
    let names: Vec<&String> = inv
        .atomics
        .keys()
        .chain(by_name.keys().filter(|n| !inv.atomics.contains_key(*n)))
        .collect();
    let mut first = true;
    for name in names {
        let decls = inv.atomics.get(name);
        let accs = by_name.get(name);
        if decls.is_none() && accs.is_none() {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\n    {{\"name\": {}, \"declared\": [", json_str(name)));
        for (i, d) in decls.into_iter().flatten().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"file\": {}, \"line\": {}, \"kind\": {}, \"type\": {}}}",
                json_str(inputs[d.file].rel),
                d.line,
                json_str(d.kind),
                json_str(&d.ty)
            ));
        }
        out.push_str("], \"accesses\": [");
        let mut sorted: Vec<&&Access> = accs.into_iter().flatten().collect();
        sorted.sort_by_key(|a| (inputs[a.file].rel, a.line, a.tok));
        for (i, a) in sorted.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"file\": {}, \"line\": {}, \"method\": {}, \"ordering\": {}}}",
                json_str(inputs[a.file].rel),
                a.line,
                json_str(&a.method),
                json_str(a.ordering.name())
            ));
        }
        out.push_str("]}");
    }
    if !first {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"locks\": [");
    for (i, (name, decls)) in inv.locks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\n    {{\"name\": {}, \"declared\": [", json_str(name)));
        for (j, d) in decls.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"file\": {}, \"line\": {}, \"kind\": {}, \"type\": {}}}",
                json_str(inputs[d.file].rel),
                d.line,
                json_str(d.kind),
                json_str(&d.ty)
            ));
        }
        out.push_str("]}");
    }
    if !inv.locks.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"lock_order_edges\": [");
    for (i, ((from, to), (fi, line))) in edges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"from\": {}, \"to\": {}, \"file\": {}, \"line\": {}}}",
            json_str(from),
            json_str(to),
            json_str(inputs[*fi].rel),
            line
        ));
    }
    if !edges.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Edge collection shared with the report: same walk as
/// [`check_lock_discipline`], without emitting findings.
fn collect_edges_only(
    inputs: &[SyncInput],
    edges: &mut BTreeMap<(String, String), (usize, u32)>,
    _scratch: &mut Vec<SyncFinding>,
) {
    for (fi, inp) in inputs.iter().enumerate() {
        let lexed = inp.lexed;
        for f in &inp.parsed.fns {
            if f.is_test {
                continue;
            }
            let Some((bs, be)) = f.body else { continue };
            let acqs = collect_lock_acqs(lexed, bs, be);
            for a in &acqs {
                let Some((guard, stmt_end)) = guard_binding(lexed, a, bs) else { continue };
                let live_end = liveness_end(lexed, &guard, stmt_end, be);
                for b in &acqs {
                    if b.tok > stmt_end && b.tok < live_end && b.lock != a.lock {
                        edges.entry((a.lock.clone(), b.lock.clone())).or_insert((fi, b.line));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::{lex, test_line_ranges};
    use crate::parse::parse_file;

    fn run(srcs: &[(&str, &str)]) -> Vec<SyncFinding> {
        let owned: Vec<(String, Lexed)> =
            srcs.iter().map(|(rel, text)| ((*rel).to_owned(), lex(text))).collect();
        let staged: Vec<(Vec<(u32, u32)>, ParsedFile)> = owned
            .iter()
            .map(|(_, lexed)| {
                let tests = test_line_ranges(lexed);
                let parsed = parse_file(lexed, &tests);
                (tests, parsed)
            })
            .collect();
        let inputs: Vec<SyncInput> = owned
            .iter()
            .zip(&staged)
            .map(|((rel, lexed), (tests, parsed))| SyncInput { rel, lexed, tests, parsed })
            .collect();
        check_sync(&inputs)
    }

    fn one(src: &str) -> Vec<SyncFinding> {
        run(&[("crates/obs/src/x.rs", src)])
    }

    const GOOD_SEQLOCK: &str = r#"
        struct Slot { seq: AtomicU64, a: AtomicU64, b: AtomicU64 }
        impl Slot {
            fn publish(&self, lap: u64, x: u64) {
                self.seq.store(lap * 2 + 1, Ordering::Relaxed);
                fence(Ordering::Release);
                self.a.store(x, Ordering::Relaxed);
                self.b.store(x + 1, Ordering::Relaxed);
                self.seq.store(lap * 2 + 2, Ordering::Release);
            }
            fn read(&self) -> Option<(u64, u64)> {
                let before = self.seq.load(Ordering::Acquire);
                let a = self.a.load(Ordering::Relaxed);
                let b = self.b.load(Ordering::Relaxed);
                fence(Ordering::Acquire);
                let after = self.seq.load(Ordering::Acquire);
                if before == after && before % 2 == 0 { Some((a, b)) } else { None }
            }
        }
    "#;

    #[test]
    fn a_correct_seqlock_is_quiet() {
        let got = one(GOOD_SEQLOCK);
        assert!(got.is_empty(), "unexpected findings: {got:?}");
    }

    #[test]
    fn demoting_the_seqlock_close_yields_exactly_one_bracket_finding() {
        // The acceptance-criteria mutation: `store(Release)` close ->
        // `store(Relaxed)`. Exactly ONE finding, naming the bracket — the
        // pairing rule must not cascade on the same field.
        let src = GOOD_SEQLOCK.replace(
            "self.seq.store(lap * 2 + 2, Ordering::Release);",
            "self.seq.store(lap * 2 + 2, Ordering::Relaxed);",
        );
        let got = one(&src);
        assert_eq!(got.len(), 1, "expected exactly one finding: {got:?}");
        assert_eq!(got[0].rule, SyncRule::Atomics);
        assert!(got[0].message.contains("seqlock bracket on `self.seq`"));
        assert!(got[0].message.contains("must close with `store(Release)`"));
    }

    #[test]
    fn rmw_bracket_open_is_flagged() {
        let src = GOOD_SEQLOCK.replace(
            "self.seq.store(lap * 2 + 1, Ordering::Relaxed);\n                fence(Ordering::Release);",
            "self.seq.fetch_add(1, Ordering::AcqRel);",
        );
        let got = one(&src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("read-modify-write open"));
    }

    #[test]
    fn missing_release_fence_after_relaxed_open_is_flagged() {
        let src = GOOD_SEQLOCK.replace("fence(Ordering::Release);", "");
        let got = one(&src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("no `fence(Release)`"));
    }

    #[test]
    fn reader_missing_acquire_fence_is_flagged() {
        let src = GOOD_SEQLOCK.replace("fence(Ordering::Acquire);", "");
        let got = one(&src);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("add `fence(Acquire)`"));
    }

    #[test]
    fn release_store_without_acquire_consumer_is_flagged() {
        let got = one(r#"
            struct S { published: AtomicU64 }
            impl S {
                fn set(&self, v: u64) { self.published.store(v, Ordering::Release); }
                fn peek(&self) -> u64 { self.published.load(Ordering::Relaxed) }
            }
        "#);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("no Acquire-strength load"));
    }

    #[test]
    fn relaxed_store_on_acquire_consumed_field_is_flagged() {
        let got = one(r#"
            struct S { flag: AtomicU64 }
            impl S {
                fn set(&self) { self.flag.store(1, Ordering::Relaxed); }
                fn wait(&self) -> u64 { self.flag.load(Ordering::Acquire) }
            }
        "#);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("use Release ordering"));
    }

    #[test]
    fn paired_release_acquire_is_quiet_and_so_are_pure_relaxed_counters() {
        let got = one(r#"
            struct S { ready: AtomicU64, hits: AtomicU64 }
            impl S {
                fn set(&self) { self.ready.store(1, Ordering::Release); }
                fn get(&self) -> u64 { self.ready.load(Ordering::Acquire) }
                fn bump(&self) { self.hits.fetch_add(1, Ordering::Relaxed); }
                fn hits(&self) -> u64 { self.hits.load(Ordering::Relaxed) }
            }
        "#);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn consumed_relaxed_rmw_is_flagged_but_discarded_is_not() {
        let got = one(r#"
            struct S { head: AtomicU64 }
            impl S {
                fn claim(&self) -> u64 {
                    let n = self.head.fetch_add(1, Ordering::Relaxed);
                    n
                }
            }
        "#);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("result of `self.head.fetch_add"));
        assert!(got[0].message.contains("allow(sync"));
    }

    #[test]
    fn relaxed_guard_over_plain_field_read_is_tainted() {
        let got = one(r#"
            struct S { ready: AtomicU64, data: Vec<u64> }
            impl S {
                fn read(&self) -> u64 {
                    let ok = self.ready.load(Ordering::Relaxed);
                    if ok > 0 {
                        return self.data.len() as u64;
                    }
                    0
                }
            }
        "#);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("non-atomic field `data`"));
    }

    #[test]
    fn relaxed_guard_over_early_return_is_quiet() {
        // The Reservoir fast-path shape: the Relaxed load only gates an
        // early return; the shared state behind it is lock-protected.
        let got = one(r#"
            struct S { floor: AtomicU64, top: Mutex<Vec<u64>> }
            impl S {
                fn offer(&self, v: u64) {
                    let full_floor = self.floor.load(Ordering::Relaxed);
                    if v <= full_floor && full_floor > 0 {
                        return;
                    }
                    let mut top = self.top.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    top.push(v);
                }
            }
        "#);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn guard_live_across_fan_out_is_flagged_and_drop_silences_it() {
        let bad = one(r#"
            struct S { registry: Mutex<Vec<u64>> }
            fn fan_out(s: &S, data: &[u64]) {
                let reg = s.registry.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                run_chunked(data, 4, |c| c.len());
            }
        "#);
        assert_eq!(bad.len(), 1, "{bad:?}");
        assert!(bad[0].message.contains("still live across `run_chunked"));
        assert!(bad[0].message.contains("drop(reg)"));

        let good = one(r#"
            struct S { registry: Mutex<Vec<u64>> }
            fn fan_out(s: &S, data: &[u64]) {
                let reg = s.registry.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                drop(reg);
                run_chunked(data, 4, |c| c.len());
            }
        "#);
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn lock_order_cycle_is_reported_once_with_both_hops() {
        let got = one(r#"
            struct S { a: Mutex<u64>, b: Mutex<u64> }
            fn forward(s: &S) {
                let ga = s.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                let gb = s.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            fn backward(s: &S) {
                let gb = s.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                let ga = s.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        "#);
        assert_eq!(got.len(), 1, "{got:?}");
        assert_eq!(got[0].rule, SyncRule::Locks);
        assert!(got[0].message.contains("lock-order cycle `a` -> `b` -> `a`"));
        assert!(got[0].message.contains("while holding `a`"));
        assert!(got[0].message.contains("while holding `b`"));
    }

    #[test]
    fn dropping_the_first_guard_breaks_the_cycle() {
        // The acceptance-criteria mutation, inverted: with the release
        // edge present (drop before the second acquisition) the graph is
        // acyclic; removing the `drop` re-introduces the L11 diagnostic.
        let got = one(r#"
            struct S { a: Mutex<u64>, b: Mutex<u64> }
            fn forward(s: &S) {
                let ga = s.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                let gb = s.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            fn backward(s: &S) {
                let gb = s.b.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                drop(gb);
                let ga = s.a.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        "#);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn lock_unwrap_is_flagged_and_into_inner_is_the_idiom() {
        let got = one(r#"
            struct S { state: Mutex<u64> }
            impl S {
                fn bump(&self) {
                    let mut g = self.state.lock().unwrap();
                    *g += 1;
                }
            }
        "#);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].message.contains("PoisonError::into_inner"));
    }

    #[test]
    fn try_lock_let_else_is_quiet_but_try_lock_unwrap_is_not() {
        let quiet = one(r#"
            struct S { state: Mutex<u64> }
            impl S {
                fn tick(&self) -> Option<u64> {
                    let Ok(mut g) = self.state.try_lock() else { return None };
                    *g += 1;
                    Some(*g)
                }
            }
        "#);
        assert!(quiet.is_empty(), "{quiet:?}");

        let noisy = one(r#"
            struct S { state: Mutex<u64> }
            impl S {
                fn tick(&self) {
                    let mut g = self.state.try_lock().unwrap();
                    *g += 1;
                }
            }
        "#);
        assert_eq!(noisy.len(), 1, "{noisy:?}");
        assert!(noisy[0].message.contains("WouldBlock"));
    }

    #[test]
    fn test_code_is_exempt() {
        let got = one(r#"
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() {
                    let s = S { head: AtomicU64::new(0) };
                    let n = s.head.fetch_add(1, Ordering::Relaxed);
                    let g = s.state.lock().unwrap();
                }
            }
        "#);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn pairing_matches_names_across_files() {
        let got = run(&[
            (
                "crates/obs/src/w.rs",
                r#"
                struct W { ready: AtomicU64 }
                impl W { fn set(&self) { self.ready.store(1, Ordering::Release); } }
                "#,
            ),
            (
                "crates/pipeline/src/r.rs",
                r#"
                struct R { ready: AtomicU64 }
                impl R { fn get(&self) -> u64 { self.ready.load(Ordering::Acquire) } }
                "#,
            ),
        ]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn sync_report_is_stable_and_lists_the_inventory() {
        let srcs = [(
            "crates/obs/src/x.rs",
            r#"
            struct S { ready: AtomicU64, state: Mutex<u64> }
            impl S {
                fn set(&self) { self.ready.store(1, Ordering::Release); }
                fn get(&self) -> u64 { self.ready.load(Ordering::Acquire) }
            }
            "#,
        )];
        let owned: Vec<(String, Lexed)> =
            srcs.iter().map(|(rel, text)| ((*rel).to_owned(), lex(text))).collect();
        let staged: Vec<(Vec<(u32, u32)>, ParsedFile)> = owned
            .iter()
            .map(|(_, lexed)| {
                let tests = test_line_ranges(lexed);
                let parsed = parse_file(lexed, &tests);
                (tests, parsed)
            })
            .collect();
        let inputs: Vec<SyncInput> = owned
            .iter()
            .zip(&staged)
            .map(|((rel, lexed), (tests, parsed))| SyncInput { rel, lexed, tests, parsed })
            .collect();
        let a = report_json(&inputs);
        let b = report_json(&inputs);
        assert_eq!(a, b);
        assert!(a.contains("\"name\": \"ready\""));
        assert!(a.contains("\"ordering\": \"Release\""));
        assert!(a.contains("\"name\": \"state\""));
        assert!(a.contains("\"lock_order_edges\": []"));
    }
}
