#![forbid(unsafe_code)]

//! Standalone `mosaic-lint` binary; `mosaic lint` wraps the same driver.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(mosaic_lint::cli_main(&args));
}
