//! `mosaic lint --debt` — a hotspots/debtmap-style technical-debt report.
//!
//! Ranks every workspace function by a composite of *how hard it is to
//! change* (cyclomatic-ish complexity, nesting, non-structured exits,
//! fan-out from the call graph) times *how often it actually changes*
//! (per-file commit churn from `git log`). The score is deliberately
//! simple — `complexity × churn` — so the ranking is explainable: a
//! gnarly function nobody touches outranks nothing; a gnarly function on
//! the hot path of every PR floats to the top of the refactor queue.
//!
//! Output is byte-stable: functions are sorted by `(score desc, file,
//! line, name)`, JSON keys are emitted in a fixed order, and nothing
//! depends on wall-clock time — two runs against the same tree and git
//! state produce identical bytes.

use crate::graph::CallGraph;
use crate::lex::{lex, test_line_ranges};
use crate::parse::{parse_file, ParsedFile};
use std::collections::BTreeMap;
use std::path::Path;

/// One ranked function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DebtEntry {
    /// Workspace-relative file, forward slashes.
    pub file: String,
    /// Line of the `fn` keyword.
    pub line: u32,
    /// `Owner::name` for methods, `name` for free functions.
    pub function: String,
    /// Cyclomatic-ish complexity (1 + branch points).
    pub complexity: u32,
    /// Maximum brace-nesting depth inside the body.
    pub nesting: u32,
    /// Non-structured exits (`return`, `break`, `continue`, `?`).
    pub exits: u32,
    /// Distinct workspace functions called.
    pub fan_out: u32,
    /// Commits that touched the defining file.
    pub churn: u32,
    /// `complexity × churn`.
    pub score: u64,
}

/// The full report.
#[derive(Debug, Default)]
pub struct DebtReport {
    /// Entries sorted by `(score desc, file, line, function)`.
    pub entries: Vec<DebtEntry>,
    /// Number of files contributing functions.
    pub files: usize,
}

/// Commits-per-file from `git log`, as workspace-relative paths. Returns
/// an empty map when `root` is not a git checkout (every file then gets
/// churn 1, so the report degrades to a pure complexity ranking).
fn git_churn(root: &Path) -> BTreeMap<String, u32> {
    let out = std::process::Command::new("git")
        .arg("-C")
        .arg(root)
        .args(["log", "--pretty=format:", "--name-only"])
        .output();
    let mut churn = BTreeMap::new();
    if let Ok(out) = out {
        if out.status.success() {
            for line in String::from_utf8_lossy(&out.stdout).lines() {
                let line = line.trim();
                if line.ends_with(".rs") {
                    *churn.entry(line.to_owned()).or_insert(0) += 1;
                }
            }
        }
    }
    churn
}

/// Build the report from already-read `(rel, text)` pairs plus a churn map.
/// Split out from [`debt_report`] so tests can run it hermetically.
pub fn build_report(files: &[(String, String)], churn: &BTreeMap<String, u32>) -> DebtReport {
    let parsed: Vec<(String, ParsedFile)> = files
        .iter()
        .map(|(rel, text)| {
            let lexed = lex(text);
            let tests = test_line_ranges(&lexed);
            (rel.clone(), parse_file(&lexed, &tests))
        })
        .collect();
    let refs: Vec<(&str, &ParsedFile)> = parsed.iter().map(|(r, p)| (r.as_str(), p)).collect();
    let graph = CallGraph::build(&refs);

    let mut entries = Vec::new();
    let mut seen_files = std::collections::BTreeSet::new();
    for (i, node) in graph.nodes.iter().enumerate() {
        let file_churn = churn.get(node.rel).copied().unwrap_or(1).max(1);
        let f = node.f;
        entries.push(DebtEntry {
            file: node.rel.to_owned(),
            line: f.line,
            function: f.qualified(),
            complexity: f.complexity,
            nesting: f.nesting,
            exits: f.exits,
            fan_out: graph.fan_out(i) as u32,
            churn: file_churn,
            score: u64::from(f.complexity) * u64::from(file_churn),
        });
        seen_files.insert(node.rel.to_owned());
    }
    entries.sort_by(|a, b| {
        b.score
            .cmp(&a.score)
            .then_with(|| a.file.cmp(&b.file))
            .then_with(|| a.line.cmp(&b.line))
            .then_with(|| a.function.cmp(&b.function))
    });
    DebtReport { entries, files: seen_files.len() }
}

/// Scan the workspace at `root` and build the full debt report.
pub fn debt_report(root: &Path) -> std::io::Result<DebtReport> {
    let mut files = Vec::new();
    for path in crate::collect_rs_files(root)? {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        files.push((rel, std::fs::read_to_string(&path)?));
    }
    Ok(build_report(&files, &git_churn(root)))
}

impl DebtReport {
    /// Stable machine-readable JSON, hand-rolled with fixed key order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"functions\": [");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"rank\": {}, \"function\": {}, \"file\": {}, \"line\": {}, \
                 \"complexity\": {}, \"nesting\": {}, \"exits\": {}, \"fan_out\": {}, \
                 \"churn\": {}, \"score\": {}}}",
                i + 1,
                crate::findings::json_str(&e.function),
                crate::findings::json_str(&e.file),
                e.line,
                e.complexity,
                e.nesting,
                e.exits,
                e.fan_out,
                e.churn,
                e.score
            ));
        }
        if !self.entries.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str(&format!(
            "],\n  \"summary\": {{\"functions\": {}, \"files\": {}}}\n}}\n",
            self.entries.len(),
            self.files
        ));
        out
    }

    /// Markdown top-`n` table plus a one-line summary.
    pub fn to_markdown(&self, n: usize) -> String {
        let mut out = String::from(
            "| rank | function | location | complexity | nesting | exits | fan-out | churn | score |\n\
             |-----:|----------|----------|-----------:|--------:|------:|--------:|------:|------:|\n",
        );
        for (i, e) in self.entries.iter().take(n).enumerate() {
            out.push_str(&format!(
                "| {} | `{}` | `{}:{}` | {} | {} | {} | {} | {} | {} |\n",
                i + 1,
                e.function,
                e.file,
                e.line,
                e.complexity,
                e.nesting,
                e.exits,
                e.fan_out,
                e.churn,
                e.score
            ));
        }
        out.push_str(&format!(
            "\n{} function(s) ranked across {} file(s); score = complexity × churn.\n",
            self.entries.len(),
            self.files
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_files() -> Vec<(String, String)> {
        vec![
            (
                "crates/a/src/hot.rs".to_owned(),
                "pub fn gnarly(x: u8) -> u8 {\n    if x > 1 { if x > 2 { return 3; } }\n    helper(x)\n}\nfn helper(x: u8) -> u8 { x }\n"
                    .to_owned(),
            ),
            ("crates/a/src/cold.rs".to_owned(), "pub fn simple() {}\n".to_owned()),
        ]
    }

    #[test]
    fn churn_multiplies_complexity() {
        let mut churn = BTreeMap::new();
        churn.insert("crates/a/src/hot.rs".to_owned(), 10);
        let r = build_report(&fixture_files(), &churn);
        let gnarly = r.entries.iter().find(|e| e.function == "gnarly").unwrap();
        assert_eq!(gnarly.complexity, 3); // 1 + two ifs
        assert_eq!(gnarly.churn, 10);
        assert_eq!(gnarly.score, 30);
        assert_eq!(r.entries[0].function, "gnarly");
    }

    #[test]
    fn unknown_files_default_to_churn_one() {
        let r = build_report(&fixture_files(), &BTreeMap::new());
        assert!(r.entries.iter().all(|e| e.churn == 1));
    }

    #[test]
    fn fan_out_counts_resolved_calls() {
        let r = build_report(&fixture_files(), &BTreeMap::new());
        let gnarly = r.entries.iter().find(|e| e.function == "gnarly").unwrap();
        assert_eq!(gnarly.fan_out, 1);
    }

    #[test]
    fn json_is_byte_stable_and_ordered() {
        let mut churn = BTreeMap::new();
        churn.insert("crates/a/src/hot.rs".to_owned(), 4);
        let a = build_report(&fixture_files(), &churn).to_json();
        let b = build_report(&fixture_files(), &churn).to_json();
        assert_eq!(a, b);
        assert!(a.contains("\"rank\": 1"));
        assert!(a.contains("\"summary\": {\"functions\": 3, \"files\": 2}"));
    }

    #[test]
    fn ties_break_by_file_then_line() {
        let files = vec![
            ("crates/a/src/b.rs".to_owned(), "pub fn bbb() {}\n".to_owned()),
            ("crates/a/src/a.rs".to_owned(), "pub fn aaa() {}\npub fn zzz() {}\n".to_owned()),
        ];
        let r = build_report(&files, &BTreeMap::new());
        let order: Vec<&str> = r.entries.iter().map(|e| e.function.as_str()).collect();
        assert_eq!(order, vec!["aaa", "zzz", "bbb"]);
    }

    #[test]
    fn markdown_table_caps_at_top_n() {
        let r = build_report(&fixture_files(), &BTreeMap::new());
        let md = r.to_markdown(1);
        assert!(md.contains("| 1 | `"), "{md}");
        assert!(!md.contains("| 2 | `"), "{md}");
        assert!(md.contains("3 function(s) ranked"));
    }
}
