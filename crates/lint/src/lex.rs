//! A lightweight Rust tokenizer, sufficient for the invariant rules.
//!
//! This is not a full lexer: it only has to tell identifiers, punctuation
//! and literals apart, skip the insides of strings and comments (so that
//! `".unwrap("` inside a string never matches a rule), track line numbers,
//! and surface line comments so the `lint: allow` escape hatch can be read
//! back out. Nested block comments, raw strings (`r#"…"#`), byte strings
//! and the lifetime-vs-char-literal ambiguity are all handled, because a
//! single mislexed quote would desynchronize everything after it.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`unwrap`, `match`, `HashMap`, `_`, …).
    Ident(String),
    /// A single punctuation character (`.`, `[`, `::` arrives as two `:`).
    Punct(char),
    /// A string, char, byte or numeric literal (contents dropped).
    Literal,
    /// A lifetime such as `'a` (distinct from a char literal).
    Lifetime,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based source line.
    pub line: u32,
}

/// The result of lexing one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens outside comments and string/char literal bodies.
    pub tokens: Vec<Spanned>,
    /// Line comments as `(line, text-after-slashes)`, in order.
    pub comments: Vec<(u32, String)>,
}

impl Lexed {
    /// The identifier text of token `i`, if it is an identifier.
    pub fn ident(&self, i: usize) -> Option<&str> {
        match self.tokens.get(i) {
            Some(Spanned { tok: Tok::Ident(s), .. }) => Some(s),
            _ => None,
        }
    }

    /// `true` when token `i` is the punctuation `c`.
    pub fn is_punct(&self, i: usize, c: char) -> bool {
        matches!(self.tokens.get(i), Some(Spanned { tok: Tok::Punct(p), .. }) if *p == c)
    }
}

/// Lex `src` into tokens and line comments.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i + 2;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                let text = String::from_utf8_lossy(&b[start..i]).into_owned();
                out.comments.push((line, text));
            }
            b'/' if b.get(i + 1) == Some(&b'*') => {
                // Nested block comment.
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            b'"' => {
                let start_line = line;
                i = skip_string(b, i + 1, &mut line);
                out.tokens.push(Spanned { tok: Tok::Literal, line: start_line });
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let next = b.get(i + 1).copied();
                let after = b.get(i + 2).copied();
                let is_lifetime = matches!(next, Some(n) if n == b'_' || n.is_ascii_alphabetic())
                    && after != Some(b'\'');
                if is_lifetime {
                    i += 1;
                    while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                        i += 1;
                    }
                    out.tokens.push(Spanned { tok: Tok::Lifetime, line });
                } else {
                    let start_line = line;
                    i += 1;
                    while i < b.len() && b[i] != b'\'' {
                        if b[i] == b'\\' {
                            i += 1; // skip the escaped character
                        }
                        if i < b.len() && b[i] == b'\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                    i += 1; // closing quote
                    out.tokens.push(Spanned { tok: Tok::Literal, line: start_line });
                }
            }
            c if c.is_ascii_digit() => {
                i += 1;
                while i < b.len()
                    && (b[i].is_ascii_alphanumeric()
                        || b[i] == b'_'
                        // One decimal point, but never the `..` of a range.
                        || (b[i] == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit)))
                {
                    i += 1;
                }
                out.tokens.push(Spanned { tok: Tok::Literal, line });
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == b'_' || b[i].is_ascii_alphanumeric()) {
                    i += 1;
                }
                let ident = &src[start..i];
                // A string-prefix identifier glued to a quote starts a
                // (possibly raw) string or byte-char literal.
                if matches!(ident, "r" | "b" | "br" | "c" | "cr") {
                    match b.get(i).copied() {
                        Some(b'"') => {
                            let start_line = line;
                            if ident.contains('r') {
                                i = skip_raw_string(b, i, &mut line);
                            } else {
                                i = skip_string(b, i + 1, &mut line);
                            }
                            out.tokens.push(Spanned { tok: Tok::Literal, line: start_line });
                            continue;
                        }
                        Some(b'#') if ident.contains('r') => {
                            let start_line = line;
                            i = skip_raw_string(b, i, &mut line);
                            out.tokens.push(Spanned { tok: Tok::Literal, line: start_line });
                            continue;
                        }
                        Some(b'\'') if ident == "b" => {
                            let start_line = line;
                            i += 1; // opening quote
                            while i < b.len() && b[i] != b'\'' {
                                if b[i] == b'\\' {
                                    i += 1;
                                }
                                i += 1;
                            }
                            i += 1;
                            out.tokens.push(Spanned { tok: Tok::Literal, line: start_line });
                            continue;
                        }
                        _ => {}
                    }
                }
                out.tokens.push(Spanned { tok: Tok::Ident(ident.to_owned()), line });
            }
            c => {
                out.tokens.push(Spanned { tok: Tok::Punct(c as char), line });
                i += 1;
            }
        }
    }
    out
}

/// Skip a normal (escaped) string body; `i` points just past the opening
/// quote. Returns the index just past the closing quote.
fn skip_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    while i < b.len() && b[i] != b'"' {
        if b[i] == b'\\' {
            i += 1; // skip the escaped character
        }
        if i < b.len() && b[i] == b'\n' {
            *line += 1;
        }
        i += 1;
    }
    i + 1
}

/// Skip a raw string starting at `i` (pointing at `#` or `"` after the `r`
/// prefix). Returns the index just past the closing delimiter.
fn skip_raw_string(b: &[u8], mut i: usize, line: &mut u32) -> usize {
    let mut hashes = 0usize;
    while i < b.len() && b[i] == b'#' {
        hashes += 1;
        i += 1;
    }
    if i < b.len() && b[i] == b'"' {
        i += 1;
    }
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'"'
            && b[i + 1..].len() >= hashes
            && b[i + 1..i + 1 + hashes].iter().all(|&h| h == b'#')
        {
            return i + 1 + hashes;
        } else {
            i += 1;
        }
    }
    i
}

/// Line ranges (inclusive) covered by `#[cfg(test)]` items — test modules
/// and test-only functions are exempt from the panic/determinism rules: a
/// panicking test *is* the failure signal, not a production crash.
pub fn test_line_ranges(lexed: &Lexed) -> Vec<(u32, u32)> {
    let toks = &lexed.tokens;
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        // Match `# [ cfg ( test ) ]`.
        let is_cfg_test = lexed.is_punct(i, '#')
            && lexed.is_punct(i + 1, '[')
            && lexed.ident(i + 2) == Some("cfg")
            && lexed.is_punct(i + 3, '(')
            && lexed.ident(i + 4) == Some("test")
            && lexed.is_punct(i + 5, ')')
            && lexed.is_punct(i + 6, ']');
        if !is_cfg_test {
            i += 1;
            continue;
        }
        let start_line = toks[i].line;
        let mut j = i + 7;
        // Skip any further attributes on the same item.
        while lexed.is_punct(j, '#') && lexed.is_punct(j + 1, '[') {
            let mut depth = 0i32;
            j += 1;
            while j < toks.len() {
                if lexed.is_punct(j, '[') {
                    depth += 1;
                } else if lexed.is_punct(j, ']') {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        // The item body is the next braced block (or the item ends at `;`).
        let mut end_line = start_line;
        while j < toks.len() {
            if lexed.is_punct(j, ';') {
                end_line = toks[j].line;
                break;
            }
            if lexed.is_punct(j, '{') {
                let mut depth = 0i32;
                while j < toks.len() {
                    if lexed.is_punct(j, '{') {
                        depth += 1;
                    } else if lexed.is_punct(j, '}') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    j += 1;
                }
                end_line = toks.get(j).map_or(start_line, |t| t.line);
                break;
            }
            j += 1;
        }
        ranges.push((start_line, end_line));
        i = j.max(i + 1);
    }
    ranges
}

/// `true` when `line` falls inside any of the `ranges`.
pub fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(a, b)| line >= a && line <= b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|s| match s.tok {
                Tok::Ident(i) => Some(i),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r###"
            let a = ".unwrap("; // .expect( in a comment
            /* .unwrap( in a block /* nested */ comment */
            let b = r#"raw .unwrap( body"#;
            let c = b"bytes .unwrap(";
        "###;
        let ids = idents(src);
        assert!(!ids.iter().any(|i| i == "unwrap" || i == "expect"), "{ids:?}");
    }

    #[test]
    fn line_numbers_survive_multiline_constructs() {
        let src = "let a = \"two\nlines\";\nfoo();\n";
        let lexed = lex(src);
        let foo = lexed
            .tokens
            .iter()
            .find(|t| matches!(&t.tok, Tok::Ident(i) if i == "foo"))
            .map(|t| t.line);
        assert_eq!(foo, Some(3));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let lexed = lex(src);
        let lifetimes = lexed.tokens.iter().filter(|t| t.tok == Tok::Lifetime).count();
        assert_eq!(lifetimes, 2);
        // The trailing 'x' is a literal, and `str`/`char` survive as idents.
        assert!(idents(src).iter().any(|i| i == "char"));
    }

    #[test]
    fn escaped_quotes_do_not_desync() {
        let src = r#"let s = "a\"b"; let t = unwrap_me;"#;
        assert!(idents(src).iter().any(|i| i == "unwrap_me"));
    }

    #[test]
    fn comments_are_captured_with_lines() {
        let src = "foo();\n// lint: allow(panic, \"safe\")\nbar();\n";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(lexed.comments[0].0, 2);
        assert!(lexed.comments[0].1.contains("lint: allow"));
    }

    #[test]
    fn numeric_ranges_lex_cleanly() {
        let src = "for i in 0..10 { x(1.5); }";
        let lexed = lex(src);
        // `0..10` must produce two literals and two dots, not eat the range.
        let dots = lexed.tokens.iter().filter(|t| t.tok == Tok::Punct('.')).count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn cfg_test_ranges_cover_module_bodies() {
        let src = "\
fn prod() {}
#[cfg(test)]
mod tests {
    #[test]
    fn t() { x.unwrap(); }
}
fn also_prod() {}
";
        let lexed = lex(src);
        let ranges = test_line_ranges(&lexed);
        assert_eq!(ranges.len(), 1);
        assert!(in_ranges(&ranges, 5));
        assert!(!in_ranges(&ranges, 1));
        assert!(!in_ranges(&ranges, 7));
    }
}
