//! `mosaic` — command-line front end for the MOSAIC reproduction.
//!
//! Subcommands:
//!
//! * `generate` — write a synthetic Blue Waters-like dataset as `.mdf`
//!   files (plus a `truth.jsonl` sidecar);
//! * `categorize` — run MOSAIC on `.mdf` files and print one JSON report
//!   per trace;
//! * `analyze` — run the full pipeline on an in-memory dataset and print
//!   the funnel, the category distribution tables, and the Jaccard matrix;
//! * `evaluate` — sample-based accuracy against ground truth (§IV-E).
//!
//! Run `mosaic help` for usage.

#![forbid(unsafe_code)]

use mosaic_core::CategorizerConfig;
use mosaic_pipeline::executor::{process, ParseMode, PipelineConfig};
use mosaic_pipeline::source::{ClosureSource, TraceInput};
use mosaic_synth::truth::AccuracyReport;
use mosaic_synth::{Dataset, DatasetConfig, Payload};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((cmd, rest)) => (cmd.as_str(), rest),
        None => ("help", &args[..]),
    };
    let result = match cmd {
        "generate" => generate(rest),
        "categorize" => categorize(rest),
        // `run` is the production-flavoured alias for `analyze`.
        "analyze" | "run" => analyze(rest),
        "evaluate" => evaluate(rest),
        "stability" => stability(rest),
        "interference" => interference(rest),
        "discover" => discover_cmd(rest),
        "render" => render(rest),
        "figures" => figures(rest),
        "diff" => diff(rest),
        "watch" => watch(rest),
        "verify" => verify(rest),
        "lint" => lint(rest),
        "help" | "--help" | "-h" => {
            print!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand {other:?}; see `mosaic help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("mosaic: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
mosaic — detection and categorization of I/O patterns in HPC traces

USAGE:
  mosaic generate  --out DIR [--n N] [--seed S] [--corruption F]
  mosaic categorize FILE.mdf|FILE.txt [...]
  mosaic analyze   [--n N | --dir DIR] [--seed S] [--threads T] [--json]
                   [--metrics FILE] [--markdown FILE] [--progress]
                   [--trace-out FILE.json] [--trace-md FILE.md]
                   [--trace-capacity N] [--parse-mode zerocopy|owned]
                   [--metrics-out FILE] [--metrics-format prom|json]
                                                        (alias: mosaic run)
  mosaic evaluate  [--n N] [--sample K] [--seed S]
  mosaic stability [--n N] [--seed S] [--min-runs R]
  mosaic interference [--n N] [--seed S] [--compress C] [--bandwidth-gbs B]
  mosaic discover  [--n N] [--seed S] [--k K]
  mosaic render    FILE.mdf --out FIG.svg
  mosaic figures   [--n N] [--seed S] --out-dir DIR
  mosaic diff      --seed-a A --seed-b B [--n N]
  mosaic watch     --dir DIR [--interval SECS] [--rounds R]
  mosaic verify    [--all | --differential --metamorphic --golden]
                   [--bless] [--golden-dir DIR] [--json]
  mosaic lint      [--format text|json] [--root DIR] [--sarif FILE]
                   [--sync-report FILE] [--debt [--top N]]
  mosaic help

SUBCOMMANDS:
  generate      write a synthetic dataset as .mdf files (+ truth.jsonl)
  categorize    run MOSAIC on .mdf files, one JSON report per trace
  analyze       funnel + category tables + Jaccard heatmap (alias: run)
  evaluate      ground-truth accuracy by sampling (§IV-E)
  stability     per-application categorization stability (§III-B1)
  interference  category contention analysis (§V future work)
  discover      automatic category discovery by clustering (§V future work)
  render        Fig 2-style SVG timeline of one trace
  figures       Fig 4/5-style SVGs for a whole dataset
  diff          workload drift between two datasets (category-share drift)
  watch         incrementally analyze a growing directory of .mdf files
  verify        differential / metamorphic / golden-snapshot conformance
  lint          enforce workspace invariants: determinism (L2), unsafe
                hygiene (L3), taxonomy (L4), call-graph panic-reachability
                (L5), lossy-cast safety (L6), unit consistency (L7),
                wire-taint dataflow (L8), parser guard parity (L9),
                atomics discipline (L10), lock discipline (L11);
                --debt ranks functions by complexity x git churn instead

OPTIONS:
  --n N            dataset size in traces          (default 10000)
  --seed S         RNG seed                        (default 42)
  --corruption F   corrupted-trace fraction        (default 0.32)
  --sample K       accuracy sample size            (default 512)
  --threads T      worker threads                  (default: all cores)
  --out DIR        output directory for generate
  --dir DIR        analyze .mdf files from a directory instead of generating
  --json           machine-readable analyze output
  --markdown FILE  write the analysis as a Markdown document
  --metrics FILE   dump per-stage timings, throughput and the typed funnel
                   breakdown as JSON
  --progress       live stderr line: traces/s, per-stage EWMA, evictions
  --trace-out FILE write a Chrome trace-event JSON span timeline (open in
                   Perfetto or chrome://tracing; one track per worker)
  --trace-md FILE  write the slowest-traces-per-stage table as Markdown
  --trace-capacity N
                   span ring size for --trace-out/--trace-md; older spans
                   beyond it are dropped and counted  (default 65536)
  --parse-mode M   zerocopy (default) ingests wire bytes through the
                   borrowed-view/columnar hot path; owned runs the
                   reference parser for A/B timing and triage
  --metrics-out FILE
                   export the unified metrics registry (gauges, eviction
                   reasons, per-worker utilization, sketch-backed stage
                   latency summaries) after the run
  --metrics-format F
                   exposition format for --metrics-out: `prom`
                   (Prometheus/OpenMetrics text, the default) or `json`
  --all            verify: run every suite (the default when none is named)
  --differential   verify: batch/incremental, serial/parallel, MDF roundtrip
  --metamorphic    verify: time-shift/scale, permutation, corrupt-monotone
  --golden         verify: compare against committed tests/golden snapshots
  --bless          verify: regenerate the golden snapshots instead of checking
  --golden-dir DIR verify: override the golden snapshot directory
  --format F       lint: output format, `text` or `json`  (default text)
  --root DIR       lint: workspace root (default: nearest [workspace] manifest)
  --sarif FILE     lint: additionally write a stable SARIF 2.1.0 document
  --sync-report FILE
                   lint: additionally write the L10/L11 atomic-field
                   inventory and lock-acquisition-order graph as JSON
  --debt           lint: technical-debt report instead of findings (exit 0)
  --top N          lint: rows in the markdown debt table     (default 10)
";

/// `mosaic lint`: run the workspace invariant linter (see `crates/lint`).
fn lint(args: &[String]) -> Result<(), String> {
    match mosaic_lint::cli_main(args) {
        mosaic_lint::EXIT_CLEAN => Ok(()),
        mosaic_lint::EXIT_FINDINGS => {
            Err("lint findings above — fix them or add a justified `lint: allow`".to_owned())
        }
        _ => Err("lint invocation failed".to_owned()),
    }
}

/// Tiny flag parser: `--key value` pairs only.
fn parse_flags(args: &[String]) -> Result<(HashMap<String, String>, Vec<String>), String> {
    let mut flags = HashMap::new();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(key) = arg.strip_prefix("--") {
            if matches!(
                key,
                "json" | "all" | "differential" | "metamorphic" | "golden" | "bless" | "progress"
            ) {
                flags.insert(key.to_owned(), "true".to_owned());
                continue;
            }
            let value = it.next().ok_or_else(|| format!("--{key} needs a value"))?;
            flags.insert(key.to_owned(), value.clone());
        } else {
            positional.push(arg.clone());
        }
    }
    Ok((flags, positional))
}

fn flag<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        Some(v) => v.parse().map_err(|_| format!("bad value for --{key}: {v:?}")),
        None => Ok(default),
    }
}

fn dataset_from(flags: &HashMap<String, String>) -> Result<Dataset, String> {
    let config = DatasetConfig {
        n_traces: flag(flags, "n", 10_000usize)?,
        corruption_rate: flag(flags, "corruption", 0.32f64)?,
        seed: flag(flags, "seed", 42u64)?,
    };
    Ok(Dataset::new(config))
}

fn generate(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args)?;
    let out = PathBuf::from(flags.get("out").ok_or("generate requires --out DIR")?);
    std::fs::create_dir_all(&out).map_err(|e| format!("creating {out:?}: {e}"))?;
    let ds = dataset_from(&flags)?;
    let mut truth_lines = String::new();
    for i in 0..ds.len() {
        let run = ds.generate(i);
        let bytes = match &run.payload {
            Payload::Log(log) => mosaic_darshan::mdf::to_bytes(log),
            Payload::Bytes(b) => b.clone(),
        };
        let path = out.join(format!("trace_{i:07}.mdf"));
        std::fs::write(&path, bytes).map_err(|e| format!("writing {path:?}: {e}"))?;
        if let Some(truth) = &run.truth {
            truth_lines.push_str(&format!(
                "{{\"index\":{i},\"truth\":{}}}\n",
                serde_json::to_string(truth).expect("truth serializes")
            ));
        }
    }
    std::fs::write(out.join("truth.jsonl"), truth_lines)
        .map_err(|e| format!("writing truth.jsonl: {e}"))?;
    eprintln!("wrote {} traces to {}", ds.len(), out.display());
    Ok(())
}

fn categorize(args: &[String]) -> Result<(), String> {
    let (_, files) = parse_flags(args)?;
    if files.is_empty() {
        return Err("categorize requires at least one .mdf file".into());
    }
    let categorizer = mosaic_core::Categorizer::new(CategorizerConfig::default());
    for file in &files {
        let bytes = std::fs::read(Path::new(file)).map_err(|e| format!("reading {file}: {e}"))?;
        // .txt files are darshan-parser-style text dumps; everything else is
        // binary MDF.
        let parsed = if file.ends_with(".txt") {
            String::from_utf8(bytes)
                .map_err(|_| "invalid UTF-8".to_owned())
                .and_then(|text| mosaic_darshan::text::parse(&text).map_err(|e| e.to_string()))
        } else {
            mosaic_darshan::mdf::from_bytes(&bytes).map_err(|e| e.to_string())
        };
        let mut log = match parsed {
            Ok(log) => log,
            Err(e) => {
                eprintln!("{file}: corrupted ({e}) — evicted");
                continue;
            }
        };
        match mosaic_darshan::validate::sanitize(&mut log) {
            Ok(_) => {}
            Err(_) => {
                eprintln!("{file}: fatally invalid — evicted");
                continue;
            }
        }
        let report = categorizer.categorize_log(&log);
        println!("{}", report.to_json());
    }
    Ok(())
}

/// Exposition format for `--metrics-out`.
#[derive(Clone, Copy, PartialEq, Eq)]
enum MetricsFormat {
    /// Prometheus/OpenMetrics text (the default).
    Prom,
    /// Byte-stable pretty JSON.
    Json,
}

fn analyze(args: &[String]) -> Result<(), String> {
    use std::io::Write as _;

    let (flags, _) = parse_flags(args)?;
    let threads: usize = flag(&flags, "threads", 0usize)?;
    // --trace-out / --trace-md turn on structured span tracing; the ring
    // capacity bounds timeline memory (spans beyond it are counted, not kept).
    let trace_out = flags.get("trace-out").cloned();
    let trace_md = flags.get("trace-md").cloned();
    let tracing = trace_out.is_some() || trace_md.is_some();
    let trace_capacity: usize = flag(&flags, "trace-capacity", 65_536usize)?;
    let progress_on = flags.contains_key("progress");
    // --parse-mode owned keeps the reference path reachable from the CLI
    // for A/B timing and divergence triage; zero-copy is the default.
    let parse_mode = match flags.get("parse-mode").map(String::as_str) {
        None | Some("zerocopy") => ParseMode::ZeroCopy,
        Some("owned") => ParseMode::Owned,
        Some(other) => {
            return Err(format!("--parse-mode must be zerocopy or owned, got {other:?}"))
        }
    };
    // --metrics-out attaches the unified registry; the format is validated
    // up front so a bad flag fails before a long run, not after it.
    let metrics_out = flags.get("metrics-out").cloned();
    let metrics_format = match flags.get("metrics-format").map(String::as_str) {
        None | Some("prom") => MetricsFormat::Prom,
        Some("json") => MetricsFormat::Json,
        Some(other) => return Err(format!("--metrics-format must be prom or json, got {other:?}")),
    };
    let config = PipelineConfig {
        threads: if threads == 0 { None } else { Some(threads) },
        categorizer: CategorizerConfig::default(),
        progress: progress_on.then(|| {
            let line = mosaic_obs::ProgressLine::new(std::time::Duration::from_millis(200));
            std::sync::Arc::new(
                move |done: usize, total: usize, recorder: &mosaic_obs::Recorder| {
                    if let Some(rendered) = line.tick(done, total, recorder) {
                        eprint!("\r{rendered}");
                        let _ = std::io::stderr().flush();
                    }
                },
            ) as mosaic_pipeline::executor::ProgressFn
        }),
        trace_capacity: tracing.then_some(trace_capacity),
        parse_mode,
        metrics: metrics_out.is_some(),
    };
    let started = std::time::Instant::now();
    let result = if let Some(dir) = flags.get("dir") {
        // Ingest .mdf files from disk — the production path.
        let source = mosaic_pipeline::source::DirSource::scan(Path::new(dir))
            .map_err(|e| format!("scanning {dir}: {e}"))?;
        if source.paths().is_empty() {
            return Err(format!("no .mdf files found in {dir}"));
        }
        process(&source, &config)
    } else {
        let ds = dataset_from(&flags)?;
        let source = ClosureSource::new(ds.len(), |i| match ds.generate(i).payload {
            Payload::Log(log) => TraceInput::log(log),
            Payload::Bytes(bytes) => TraceInput::bytes(bytes),
        });
        process(&source, &config)
    };
    let elapsed = started.elapsed();
    if progress_on {
        eprintln!(); // finish the \r-redrawn progress line
    }

    if let Some(timeline) = &result.timeline {
        if let Some(path) = &trace_out {
            std::fs::write(Path::new(path), timeline.to_chrome_json())
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!(
                "wrote {path} ({} spans kept, {} dropped) — open in https://ui.perfetto.dev",
                timeline.events.len(),
                timeline.dropped
            );
        }
        if let Some(path) = &trace_md {
            std::fs::write(Path::new(path), timeline.render_slow_md())
                .map_err(|e| format!("writing {path}: {e}"))?;
            eprintln!("wrote {path}");
        }
    }

    if let (Some(path), Some(registry)) = (&metrics_out, &result.registry) {
        let rendered = match metrics_format {
            MetricsFormat::Prom => registry.to_openmetrics(),
            MetricsFormat::Json => registry.to_json(),
        };
        std::fs::write(Path::new(path), rendered).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path} ({} metric families)", registry.families.len());
    }

    if let Some(metrics_path) = flags.get("metrics") {
        let doc = serde_json::json!({
            "funnel": result.funnel,
            "metrics": result.metrics,
        });
        std::fs::write(
            Path::new(metrics_path),
            serde_json::to_string_pretty(&doc).expect("metrics json"),
        )
        .map_err(|e| format!("writing {metrics_path}: {e}"))?;
        eprintln!("wrote {metrics_path}");
    }
    if let Some(md_path) = flags.get("markdown") {
        let md = mosaic_pipeline::report_md::render(&result, "MOSAIC analysis");
        std::fs::write(Path::new(md_path), md).map_err(|e| format!("writing {md_path}: {e}"))?;
        eprintln!("wrote {md_path}");
        return Ok(());
    }
    if flags.contains_key("json") {
        let doc = serde_json::json!({
            "funnel": result.funnel,
            "metrics": result.metrics,
            "single_run": result.single_run_counts(),
            "all_runs": result.all_runs_counts(),
            "elapsed_seconds": elapsed.as_secs_f64(),
        });
        println!("{}", serde_json::to_string_pretty(&doc).expect("json"));
        return Ok(());
    }

    println!("== Pre-processing funnel (cf. Fig 3) ==");
    println!("{}", result.funnel.render());
    println!();
    println!("{}", result.single_run_counts().render_table("== Single-run categories =="));
    println!("{}", result.all_runs_counts().render_table("== All-runs categories =="));
    println!("== Jaccard matrix, single-run set (cf. Fig 5) ==");
    println!("{}", result.jaccard_single_run().render_text());
    println!("== Pipeline stage metrics ==");
    println!("{}", result.metrics.render_table());
    if let Some(timeline) = &result.timeline {
        println!("{}", timeline.render_slow_md());
    }
    println!(
        "processed {} traces in {:.2}s ({:.0} traces/s)",
        result.funnel.total,
        elapsed.as_secs_f64(),
        result.funnel.total as f64 / elapsed.as_secs_f64().max(1e-9),
    );
    Ok(())
}

fn evaluate(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args)?;
    let ds = dataset_from(&flags)?;
    let sample: usize = flag(&flags, "sample", 512usize)?;
    let categorizer = mosaic_core::Categorizer::new(CategorizerConfig::default());

    // Sample valid traces deterministically by stepping through the run
    // sequence (the dataset's order is already pseudo-random).
    let mut pairs = Vec::new();
    let mut i = 0;
    while pairs.len() < sample && i < ds.len() {
        let run = ds.generate(i);
        if let (Some(truth), Payload::Log(log)) = (run.truth, &run.payload) {
            pairs.push((truth, categorizer.categorize_log(log)));
        }
        i += 1;
    }
    let acc = AccuracyReport::score(pairs.iter().map(|(t, r)| (t, r)));
    println!("sampled {} traces — accuracy {:.1}%", acc.total, 100.0 * acc.accuracy());
    for (axis, count) in &acc.errors_by_axis {
        println!("  {axis:<20} {count} errors");
    }
    Ok(())
}

fn pipeline_over(
    flags: &HashMap<String, String>,
) -> Result<mosaic_pipeline::PipelineResult, String> {
    let ds = dataset_from(flags)?;
    let source = ClosureSource::new(ds.len(), move |i| match ds.generate(i).payload {
        Payload::Log(log) => TraceInput::log(log),
        Payload::Bytes(bytes) => TraceInput::bytes(bytes),
    });
    Ok(process(&source, &PipelineConfig::default()))
}

fn stability(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args)?;
    let min_runs: usize = flag(&flags, "min-runs", 10)?;
    let result = pipeline_over(&flags)?;
    let stats = mosaic_pipeline::stability::app_stability(&result.outcomes, min_runs);
    println!(
        "per-application categorization stability ({} apps with >= {min_runs} runs):",
        stats.len()
    );
    for s in stats.iter().take(20) {
        println!(
            "  {:>6.1}%  {} (uid {}, {} runs) — modal categories: {}",
            100.0 * s.stability(),
            s.app.1,
            s.app.0,
            s.runs,
            s.modal_categories.iter().map(|c| c.name()).collect::<Vec<_>>().join(", "),
        );
    }
    println!(
        "run-weighted mean stability: {:.1}%",
        100.0 * mosaic_pipeline::stability::mean_stability(&stats)
    );
    Ok(())
}

fn interference(args: &[String]) -> Result<(), String> {
    const GB: f64 = (1u64 << 30) as f64;
    let (flags, _) = parse_flags(args)?;
    let compress: f64 = flag(&flags, "compress", 400.0)?;
    let bandwidth: f64 = flag(&flags, "bandwidth-gbs", 0.5)?;
    let result = pipeline_over(&flags)?;
    let mut outcomes = result.outcomes;
    for o in &mut outcomes {
        let offset = (o.start_time - mosaic_synth::dataset::YEAR_EPOCH) as f64 / compress;
        let runtime = o.end_time - o.start_time;
        o.start_time = mosaic_synth::dataset::YEAR_EPOCH + offset as i64;
        o.end_time = o.start_time + runtime;
    }
    let report = mosaic_pipeline::interference::analyze(&outcomes, bandwidth * GB, 600.0);
    println!(
        "interference: {} contended of {} active bins; peak demand {:.2} GB/s",
        report.contended_bins,
        report.active_bins,
        report.peak_demand / GB
    );
    println!("\ncontention participation by category:");
    for (cat, score) in report.category_scores.iter().take(10) {
        println!("  {:>10.2} TB*s  {}", score / (GB * 1024.0), cat.name());
    }
    println!("\nmost conflicting category pairs:");
    for (a, b, score) in report.pair_scores.iter().take(10) {
        println!("  {:>10.2} TB*s  {} x {}", score / (GB * 1024.0), a.name(), b.name());
    }
    Ok(())
}

fn discover_cmd(args: &[String]) -> Result<(), String> {
    use rand::SeedableRng;
    let (flags, _) = parse_flags(args)?;
    let k: usize = flag(&flags, "k", 8)?;
    let seed: u64 = flag(&flags, "seed", 42)?;
    let result = pipeline_over(&flags)?;
    let reports: Vec<_> = result.representatives().map(|o| o.report.clone()).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let clustering = mosaic_core::discovery::discover(&reports, k, &mut rng);
    let labels: Vec<String> = reports.iter().map(mosaic_core::discovery::reference_label).collect();
    println!(
        "discovered {k} clusters over {} traces; purity vs hand categories: {:.1}%\n",
        reports.len(),
        100.0 * mosaic_core::discovery::purity(&clustering, &labels)
    );
    for profile in mosaic_core::discovery::profiles(&reports, &clustering, 0.6) {
        let cats: Vec<String> = profile
            .dominant
            .iter()
            .map(|(c, f)| format!("{} {:.0}%", c.name(), 100.0 * f))
            .collect();
        println!(
            "  cluster {:>2} ({:>5} traces): {}",
            profile.cluster,
            profile.size,
            cats.join(", ")
        );
    }
    Ok(())
}

fn render(args: &[String]) -> Result<(), String> {
    let (flags, files) = parse_flags(args)?;
    let file = files.first().ok_or("render requires a .mdf file")?;
    let out = flags.get("out").cloned().unwrap_or_else(|| format!("{file}.svg"));
    let bytes = std::fs::read(Path::new(file)).map_err(|e| format!("reading {file}: {e}"))?;
    let mut log =
        mosaic_darshan::mdf::from_bytes(&bytes).map_err(|e| format!("{file}: corrupted ({e})"))?;
    mosaic_darshan::validate::sanitize(&mut log).map_err(|_| format!("{file}: fatally invalid"))?;
    let view = mosaic_darshan::ops::OperationView::from_log(&log);
    let report = mosaic_core::Categorizer::default().categorize(&view);
    let svg = mosaic_viz::timeline::render(&view, &report);
    std::fs::write(&out, svg).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!("wrote {out}");
    Ok(())
}

fn figures(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args)?;
    let out_dir = PathBuf::from(flags.get("out-dir").ok_or("figures requires --out-dir DIR")?);
    std::fs::create_dir_all(&out_dir).map_err(|e| format!("creating {out_dir:?}: {e}"))?;
    let result = pipeline_over(&flags)?;

    let bars = mosaic_viz::bars::render(
        &result.single_run_counts(),
        &result.all_runs_counts(),
        "Category distribution (cf. Fig 4 / Tables II-III)",
    );
    let bars_path = out_dir.join("fig4_categories.svg");
    std::fs::write(&bars_path, bars).map_err(|e| format!("writing {bars_path:?}: {e}"))?;

    let heatmap = mosaic_viz::heatmap::render(&result.jaccard_single_run(), 0.01);
    let heat_path = out_dir.join("fig5_jaccard.svg");
    std::fs::write(&heat_path, heatmap).map_err(|e| format!("writing {heat_path:?}: {e}"))?;

    eprintln!("wrote {} and {}", bars_path.display(), heat_path.display());
    Ok(())
}

/// Compare the category mix of two datasets (e.g. two months of traces):
/// total-variation distance plus the categories that moved the most — the
/// operational "did our workload change?" question.
fn diff(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args)?;
    let n: usize = flag(&flags, "n", 10_000)?;
    let seed_a: u64 = flag(&flags, "seed-a", 42)?;
    let seed_b: u64 = flag(&flags, "seed-b", 43)?;
    let corruption: f64 = flag(&flags, "corruption", 0.32)?;

    let analyze_one = |seed: u64| {
        let ds = Dataset::new(DatasetConfig { n_traces: n, corruption_rate: corruption, seed });
        let source = ClosureSource::new(ds.len(), move |i| match ds.generate(i).payload {
            Payload::Log(log) => TraceInput::log(log),
            Payload::Bytes(bytes) => TraceInput::bytes(bytes),
        });
        process(&source, &PipelineConfig::default())
    };
    let a = analyze_one(seed_a);
    let b = analyze_one(seed_b);

    for (view, ca, cb) in [
        ("single-run", a.single_run_counts(), b.single_run_counts()),
        ("all-runs", a.all_runs_counts(), b.all_runs_counts()),
    ] {
        println!(
            "{view}: category-share drift (half-L1) {:.1} pts ({} vs {} traces)",
            100.0 * ca.l1_drift(&cb),
            ca.total,
            cb.total
        );
        println!("  biggest movers (B share - A share):");
        for (cat, delta) in ca.biggest_movers(&cb, 6) {
            println!(
                "    {:>+6.1} pts  {}  ({:.1}% -> {:.1}%)",
                100.0 * delta,
                cat.name(),
                100.0 * ca.fraction(cat),
                100.0 * cb.fraction(cat),
            );
        }
        println!();
    }
    Ok(())
}

/// Watch a directory of .mdf logs (the live-monitoring deployment): poll,
/// ingest new files incrementally, and print the updated statistics after
/// each round. `--rounds 1` (the default) makes it a one-shot incremental
/// scan suitable for cron.
fn watch(args: &[String]) -> Result<(), String> {
    use mosaic_pipeline::incremental::IncrementalAnalyzer;
    use mosaic_pipeline::source::{DirSource, TraceSource};

    let (flags, _) = parse_flags(args)?;
    let dir = PathBuf::from(flags.get("dir").ok_or("watch requires --dir DIR")?);
    let interval: u64 = flag(&flags, "interval", 5)?;
    let rounds: usize = flag(&flags, "rounds", 1)?;

    let mut analyzer = IncrementalAnalyzer::new(CategorizerConfig::default());
    let mut seen: std::collections::BTreeSet<PathBuf> = Default::default();

    for round in 0..rounds {
        let source = DirSource::scan(&dir).map_err(|e| format!("scanning {dir:?}: {e}"))?;
        let mut new_files = 0usize;
        for (i, path) in source.paths().iter().enumerate() {
            if seen.insert(path.clone()) {
                // An unreadable file is accounted as an io_error eviction.
                analyzer.ingest_fetched(source.fetch(i));
                new_files += 1;
            }
        }
        let f = analyzer.funnel();
        eprintln!(
            "round {}: +{} files (total {}: {} valid, {} evicted of which {} io-errors, {} apps)",
            round + 1,
            new_files,
            f.total,
            f.valid,
            f.evicted(),
            f.io_error,
            f.unique_apps,
        );
        if round + 1 < rounds {
            std::thread::sleep(std::time::Duration::from_secs(interval));
        }
    }

    println!("{}", analyzer.single_run_counts().render_table("single-run categories"));
    println!("{}", analyzer.all_runs_counts().render_table("all-runs categories"));
    Ok(())
}

/// Run the conformance harness: differential oracles, metamorphic
/// invariants, and the golden-snapshot suite. Naming any suite flag runs
/// only the named suites; `--all` (or no suite flag) runs everything.
/// Exits nonzero when any check fails, so CI can gate on it directly.
fn verify(args: &[String]) -> Result<(), String> {
    let (flags, _) = parse_flags(args)?;
    let named =
        ["differential", "metamorphic", "golden"].iter().any(|suite| flags.contains_key(*suite));
    let everything = flags.contains_key("all") || !named;
    let options = mosaic_verify::VerifyOptions {
        differential: everything || flags.contains_key("differential"),
        metamorphic: everything || flags.contains_key("metamorphic"),
        golden: everything || flags.contains_key("golden"),
        bless: flags.contains_key("bless"),
        golden_dir: flags
            .get("golden-dir")
            .map(PathBuf::from)
            .unwrap_or_else(mosaic_verify::golden::default_dir),
    };

    let report = mosaic_verify::run(&options);
    if flags.contains_key("json") {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render());
    }
    if report.passed() {
        Ok(())
    } else {
        Err(format!("{} conformance check(s) failed", report.failures().len()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_flags_handles_pairs_and_positionals() {
        let args: Vec<String> =
            ["--n", "50", "file.mdf", "--seed", "7"].iter().map(|s| s.to_string()).collect();
        let (flags, pos) = parse_flags(&args).unwrap();
        assert_eq!(flags.get("n").unwrap(), "50");
        assert_eq!(flags.get("seed").unwrap(), "7");
        assert_eq!(pos, vec!["file.mdf".to_string()]);
    }

    #[test]
    fn parse_flags_rejects_dangling_key() {
        let args = vec!["--n".to_string()];
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn typed_flag_defaults_and_errors() {
        let (flags, _) = parse_flags(&["--n".to_string(), "12".to_string()]).unwrap();
        assert_eq!(flag(&flags, "n", 5usize).unwrap(), 12);
        assert_eq!(flag(&flags, "missing", 5usize).unwrap(), 5);
        let (flags, _) = parse_flags(&["--n".to_string(), "xyz".to_string()]).unwrap();
        assert!(flag(&flags, "n", 5usize).is_err());
    }

    #[test]
    fn json_flag_is_boolean() {
        let (flags, _) = parse_flags(&["--json".to_string()]).unwrap();
        assert_eq!(flags.get("json").unwrap(), "true");
    }
}
