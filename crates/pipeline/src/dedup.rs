//! Application deduplication (§III-B1).
//!
//! "Since we want to categorize application behavior, we assume that all
//! executions of an application from a given user will belong to the same
//! categories. [...] For a set of executions, MOSAIC only analyzes the
//! heaviest (i.e. the most I/O-intensive) trace."

use std::collections::BTreeMap;

/// The `(uid, application basename)` grouping key.
pub type AppKey = (u32, String);

/// Pick, for every application group, the position of its heaviest trace.
///
/// `items` provides `(app key, I/O weight)` per trace; ties break toward the
/// earliest trace for determinism. Returns positions sorted ascending.
pub fn heaviest_per_app<I>(items: I) -> Vec<usize>
where
    I: IntoIterator<Item = (AppKey, i64)>,
{
    let mut best: BTreeMap<AppKey, (usize, i64)> = BTreeMap::new();
    for (pos, (key, weight)) in items.into_iter().enumerate() {
        match best.get_mut(&key) {
            Some(entry) => {
                if weight > entry.1 {
                    *entry = (pos, weight);
                }
            }
            None => {
                best.insert(key, (pos, weight));
            }
        }
    }
    let mut positions: Vec<usize> = best.into_values().map(|(pos, _)| pos).collect();
    positions.sort_unstable();
    positions
}

/// Group trace positions by application key (used by the stability
/// analysis, which needs *all* runs of each app).
pub fn group_by_app<I>(items: I) -> BTreeMap<AppKey, Vec<usize>>
where
    I: IntoIterator<Item = AppKey>,
{
    let mut groups: BTreeMap<AppKey, Vec<usize>> = BTreeMap::new();
    for (pos, key) in items.into_iter().enumerate() {
        groups.entry(key).or_default().push(pos);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(uid: u32, name: &str) -> AppKey {
        (uid, name.to_owned())
    }

    #[test]
    fn heaviest_wins_per_group() {
        let items = vec![
            (key(1, "lmp"), 100),
            (key(1, "lmp"), 500),
            (key(1, "lmp"), 300),
            (key(2, "vasp"), 50),
        ];
        assert_eq!(heaviest_per_app(items), vec![1, 3]);
    }

    #[test]
    fn ties_break_to_first() {
        let items = vec![(key(1, "a"), 100), (key(1, "a"), 100)];
        assert_eq!(heaviest_per_app(items), vec![0]);
    }

    #[test]
    fn same_name_different_user_stays_separate() {
        let items = vec![(key(1, "app"), 10), (key(2, "app"), 20)];
        assert_eq!(heaviest_per_app(items).len(), 2);
    }

    #[test]
    fn empty_input() {
        assert!(heaviest_per_app(Vec::new()).is_empty());
        assert!(group_by_app(Vec::new()).is_empty());
    }

    #[test]
    fn grouping_collects_all_positions() {
        let keys = vec![key(1, "a"), key(2, "b"), key(1, "a"), key(1, "a")];
        let groups = group_by_app(keys);
        assert_eq!(groups[&key(1, "a")], vec![0, 2, 3]);
        assert_eq!(groups[&key(2, "b")], vec![1]);
    }
}
