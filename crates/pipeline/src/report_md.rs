//! One-document Markdown analysis report — §III-B4's "statistics about the
//! global behavior of an application", packaged for humans.
//!
//! Produces a self-contained Markdown document with the pre-processing
//! funnel, both category distribution tables, the strongest Jaccard
//! correlations and the most-executed applications with their stability —
//! everything a storage or scheduling team would want from one run of the
//! pipeline.

use crate::executor::PipelineResult;
use crate::stability::{app_stability, mean_stability};
use std::fmt::Write as _;

/// Render the full analysis as Markdown.
pub fn render(result: &PipelineResult, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# {title}\n");

    // Funnel.
    let f = &result.funnel;
    let _ = writeln!(out, "## Pre-processing funnel\n");
    let _ = writeln!(out, "| stage | traces | share |");
    let _ = writeln!(out, "|---|---:|---:|");
    let pct = |x: f64| format!("{:.1}%", 100.0 * x);
    let _ = writeln!(out, "| input | {} | 100% |", f.total);
    let _ = writeln!(
        out,
        "| evicted (io-error) | {} | {} |",
        f.io_error,
        pct(f.io_error as f64 / f.total.max(1) as f64)
    );
    let _ = writeln!(
        out,
        "| evicted (format-corrupt) | {} | {} |",
        f.format_corrupt,
        pct(f.format_corrupt as f64 / f.total.max(1) as f64)
    );
    let _ = writeln!(
        out,
        "| evicted (invalid) | {} | {} |",
        f.invalid,
        pct(f.invalid as f64 / f.total.max(1) as f64)
    );
    let _ =
        writeln!(out, "| valid | {} | {} |", f.valid, pct(f.valid as f64 / f.total.max(1) as f64));
    let _ = writeln!(
        out,
        "| unique applications | {} | {} of valid |\n",
        f.unique_apps,
        pct(f.unique_fraction())
    );

    // Typed eviction breakdown.
    if !f.by_reason.is_empty() {
        let _ = writeln!(out, "### Eviction reasons\n");
        let _ = writeln!(out, "| reason | traces | share of evicted |");
        let _ = writeln!(out, "|---|---:|---:|");
        for (reason, n) in &f.by_reason {
            let _ = writeln!(
                out,
                "| `{}` | {} | {} |",
                reason.slug(),
                n,
                pct(*n as f64 / f.evicted().max(1) as f64)
            );
        }
        let _ = writeln!(out);
    }

    // Distributions.
    for (name, counts) in [
        ("Single-run categories (application view)", result.single_run_counts()),
        ("All-runs categories (file-system load view)", result.all_runs_counts()),
    ] {
        let _ = writeln!(out, "## {name}\n");
        let _ = writeln!(out, "| category | traces | share |");
        let _ = writeln!(out, "|---|---:|---:|");
        for (cat, n) in counts.ranked() {
            let _ = writeln!(out, "| `{}` | {} | {} |", cat.name(), n, pct(counts.fraction(cat)));
        }
        let _ = writeln!(out);
    }

    // Correlations.
    let jaccard = result.jaccard_single_run();
    let _ = writeln!(out, "## Strongest category co-occurrences (Jaccard)\n");
    let _ = writeln!(out, "| index | pair |");
    let _ = writeln!(out, "|---:|---|");
    for (a, b, v) in jaccard.relevant_pairs(0.10).into_iter().take(15) {
        let _ = writeln!(out, "| {} | `{}` ∧ `{}` |", pct(v), a.name(), b.name());
    }
    let _ = writeln!(out);

    // Stability of the most-run applications.
    let stats = app_stability(&result.outcomes, 10);
    if !stats.is_empty() {
        let _ = writeln!(out, "## Most-executed applications\n");
        let _ = writeln!(out, "| application | runs | stability | modal categories |");
        let _ = writeln!(out, "|---|---:|---:|---|");
        for s in stats.iter().take(12) {
            let cats: Vec<String> =
                s.modal_categories.iter().map(|c| format!("`{}`", c.name())).collect();
            let _ = writeln!(
                out,
                "| {} (uid {}) | {} | {} | {} |",
                s.app.1,
                s.app.0,
                s.runs,
                pct(s.stability()),
                cats.join(" ")
            );
        }
        let _ = writeln!(
            out,
            "\nRun-weighted mean stability: **{}** (the §III-B1 dedup premise).",
            pct(mean_stability(&stats))
        );
        let _ = writeln!(out);
    }

    // Per-stage pipeline metrics.
    let _ = writeln!(out, "## Pipeline metrics\n");
    out.push_str(&result.metrics.render_markdown());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{process, PipelineConfig};
    use crate::source::{TraceInput, VecSource};
    use mosaic_darshan::counter::PosixCounter as C;
    use mosaic_darshan::counter::PosixFCounter as F;
    use mosaic_darshan::job::JobHeader;
    use mosaic_darshan::log::TraceLogBuilder;

    fn result() -> PipelineResult {
        let mut inputs = Vec::new();
        for i in 0..30 {
            let uid = 1 + (i % 3);
            let mut b = TraceLogBuilder::new(
                JobHeader::new(i as u64, uid, 4, 0, 1000).with_exe(format!("/bin/app{}", uid)),
            );
            let r = b.begin_record("/in", -1);
            b.record_mut(r)
                .set(C::Reads, 4)
                .set(C::BytesRead, 500 << 20)
                .set(C::Opens, 4)
                .setf(F::ReadStartTimestamp, 1.0)
                .setf(F::ReadEndTimestamp, 40.0);
            inputs.push(TraceInput::log(b.finish()));
        }
        inputs.push(TraceInput::bytes(vec![1u8, 2, 3]));
        process(&VecSource::new(inputs), &PipelineConfig::default())
    }

    #[test]
    fn report_contains_every_section() {
        let md = render(&result(), "Test Analysis");
        assert!(md.starts_with("# Test Analysis"));
        for section in [
            "## Pre-processing funnel",
            "## Single-run categories",
            "## All-runs categories",
            "## Strongest category co-occurrences",
            "## Most-executed applications",
            "### Eviction reasons",
            "## Pipeline metrics",
        ] {
            assert!(md.contains(section), "missing {section}");
        }
        assert!(md.contains("`read_on_start`"));
        assert!(md.contains("mean stability"));
    }

    #[test]
    fn funnel_numbers_are_rendered() {
        let md = render(&result(), "t");
        assert!(md.contains("| input | 31 | 100% |"));
        assert!(md.contains("| evicted (format-corrupt) | 1 |"));
        assert!(md.contains("`truncated`"), "typed reason row expected:\n{md}");
    }

    #[test]
    fn empty_result_renders_without_panic() {
        let empty = process(&VecSource::new(vec![]), &PipelineConfig::default());
        let md = render(&empty, "empty");
        assert!(md.contains("## Pre-processing funnel"));
        assert!(!md.contains("Most-executed"));
    }
}
