//! The parallel executor: ingest → validate → categorize → aggregate.

use crate::dedup::{heaviest_per_app, AppKey};
use crate::funnel::FunnelStats;
use crate::source::{TraceInput, TraceSource};
use mosaic_core::category::Category;
use mosaic_core::report::CategoryCounts;
use mosaic_core::{Categorizer, CategorizerConfig, JaccardMatrix, TraceReport};
use mosaic_darshan::{mdf, validate};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Progress callback: `(traces done, traces total)`. Called from worker
/// threads; must be cheap and thread-safe.
pub type ProgressFn = Arc<dyn Fn(usize, usize) + Send + Sync>;

/// Executor configuration.
#[derive(Clone, Default)]
pub struct PipelineConfig {
    /// Worker threads; `None` uses Rayon's global default (one per core).
    pub threads: Option<usize>,
    /// Categorizer thresholds.
    pub categorizer: CategorizerConfig,
    /// Optional progress callback, invoked after every ingested trace with
    /// a relaxed atomic counter — contention-free even at full parallelism.
    pub progress: Option<ProgressFn>,
}

impl std::fmt::Debug for PipelineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineConfig")
            .field("threads", &self.threads)
            .field("categorizer", &self.categorizer)
            .field("progress", &self.progress.is_some())
            .finish()
    }
}

/// One valid trace's pipeline outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Index in the source.
    pub index: usize,
    /// Application grouping key.
    pub app_key: AppKey,
    /// I/O weight (total bytes moved) used by dedup.
    pub weight: i64,
    /// Number of records deleted by per-record sanitization.
    pub sanitized_records: usize,
    /// Job start (Unix seconds) — wallclock placement for interference
    /// analysis.
    pub start_time: i64,
    /// Job end (Unix seconds).
    pub end_time: i64,
    /// The full MOSAIC report.
    pub report: TraceReport,
}

/// Aggregated pipeline result.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Funnel accounting (Fig 3).
    pub funnel: FunnelStats,
    /// Valid traces, sorted by source index.
    pub outcomes: Vec<RunOutcome>,
    /// Positions (into `outcomes`) of the single-run representatives: the
    /// heaviest trace of each application.
    pub representatives: Vec<usize>,
}

impl PipelineResult {
    /// Category sets of every valid run (the all-runs view).
    pub fn all_runs_sets(&self) -> Vec<BTreeSet<Category>> {
        self.outcomes.iter().map(|o| o.report.categories.clone()).collect()
    }

    /// Category sets of the single-run representatives.
    pub fn single_run_sets(&self) -> Vec<BTreeSet<Category>> {
        self.representatives
            .iter()
            .map(|&p| self.outcomes[p].report.categories.clone())
            .collect()
    }

    /// Category distribution over all valid runs (PFS-load view).
    pub fn all_runs_counts(&self) -> CategoryCounts {
        CategoryCounts::from_sets(self.all_runs_sets().iter())
    }

    /// Category distribution over the single-run set (application view).
    pub fn single_run_counts(&self) -> CategoryCounts {
        CategoryCounts::from_sets(self.single_run_sets().iter())
    }

    /// Jaccard matrix over the single-run set (Fig 5 is computed on the
    /// categorized, deduplicated traces).
    pub fn jaccard_single_run(&self) -> JaccardMatrix {
        JaccardMatrix::compute(&self.single_run_sets())
    }

    /// The representative outcomes themselves.
    pub fn representatives(&self) -> impl Iterator<Item = &RunOutcome> + '_ {
        self.representatives.iter().map(move |&p| &self.outcomes[p])
    }
}

enum Ingested {
    FormatCorrupt,
    Invalid,
    Valid(Box<RunOutcome>),
}

fn ingest_one(input: TraceInput, index: usize, categorizer: &Categorizer) -> Ingested {
    let mut log = match input {
        TraceInput::Bytes(bytes) => match mdf::from_bytes(&bytes) {
            Ok(log) => log,
            Err(_) => return Ingested::FormatCorrupt,
        },
        TraceInput::Log(log) => log,
    };
    let sanitized_records = match validate::sanitize(&mut log) {
        Ok(deleted) => deleted,
        Err(_) => return Ingested::Invalid,
    };
    let report = categorizer.categorize_log(&log);
    Ingested::Valid(Box::new(RunOutcome {
        index,
        app_key: log.header().app_key(),
        weight: log.io_weight(),
        sanitized_records,
        start_time: log.header().start_time,
        end_time: log.header().end_time,
        report,
    }))
}

/// Run the full pipeline over a source.
pub fn process<S: TraceSource>(source: &S, config: &PipelineConfig) -> PipelineResult {
    let categorizer = Categorizer::new(config.categorizer.clone());
    let done = AtomicUsize::new(0);
    let total = source.len();
    let run = || {
        (0..source.len())
            .into_par_iter()
            .map(|i| {
                let out = ingest_one(source.fetch(i), i, &categorizer);
                if let Some(progress) = &config.progress {
                    // Relaxed is enough: the count is monotonic telemetry,
                    // not a synchronization point.
                    let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                    progress(n, total);
                }
                out
            })
            .collect::<Vec<Ingested>>()
    };
    let ingested = match config.threads {
        Some(n) => rayon::ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("thread pool construction")
            .install(run),
        None => run(),
    };

    let mut funnel = FunnelStats { total: source.len(), ..Default::default() };
    let mut outcomes: Vec<RunOutcome> = Vec::new();
    for item in ingested {
        match item {
            Ingested::FormatCorrupt => funnel.format_corrupt += 1,
            Ingested::Invalid => funnel.invalid += 1,
            Ingested::Valid(outcome) => outcomes.push(*outcome),
        }
    }
    funnel.valid = outcomes.len();

    let representatives =
        heaviest_per_app(outcomes.iter().map(|o| (o.app_key.clone(), o.weight)));
    funnel.unique_apps = representatives.len();

    PipelineResult { funnel, outcomes, representatives }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::VecSource;
    use mosaic_darshan::counter::PosixCounter as C;
    use mosaic_darshan::counter::PosixFCounter as F;
    use mosaic_darshan::job::JobHeader;
    use mosaic_darshan::log::TraceLogBuilder;
    use mosaic_darshan::TraceLog;

    fn log_for(uid: u32, exe: &str, bytes: i64) -> TraceLog {
        let mut b = TraceLogBuilder::new(JobHeader::new(1, uid, 4, 0, 1000).with_exe(exe));
        let r = b.begin_record("/in", -1);
        b.record_mut(r)
            .set(C::Reads, 4)
            .set(C::BytesRead, bytes)
            .set(C::Opens, 4)
            .setf(F::OpenStartTimestamp, 1.0)
            .setf(F::ReadStartTimestamp, 1.0)
            .setf(F::ReadEndTimestamp, 50.0);
        b.finish()
    }

    #[test]
    fn funnel_counts_each_fate() {
        let inputs = vec![
            TraceInput::Log(log_for(1, "/bin/a", 1000)),
            TraceInput::Bytes(vec![0, 1, 2, 3]), // format corrupt
            TraceInput::Log({
                // fatally invalid: zero-runtime header
                let b = TraceLogBuilder::new(JobHeader::new(1, 1, 4, 5, 5));
                b.finish()
            }),
            TraceInput::Log(log_for(1, "/bin/a", 2000)),
        ];
        let result = process(&VecSource::new(inputs), &PipelineConfig::default());
        assert_eq!(result.funnel.total, 4);
        assert_eq!(result.funnel.format_corrupt, 1);
        assert_eq!(result.funnel.invalid, 1);
        assert_eq!(result.funnel.valid, 2);
        assert_eq!(result.funnel.unique_apps, 1);
    }

    #[test]
    fn dedup_keeps_heaviest() {
        let inputs = vec![
            TraceInput::Log(log_for(1, "/bin/a x", 1000)),
            TraceInput::Log(log_for(1, "/bin/a y", 9000)),
            TraceInput::Log(log_for(2, "/bin/b", 500)),
        ];
        let result = process(&VecSource::new(inputs), &PipelineConfig::default());
        assert_eq!(result.representatives.len(), 2);
        let reps: Vec<i64> = result.representatives().map(|o| o.weight).collect();
        assert!(reps.contains(&9000));
        assert!(!reps.contains(&1000));
    }

    #[test]
    fn outcomes_are_index_sorted_regardless_of_parallel_order() {
        let inputs: Vec<TraceInput> =
            (0..50).map(|i| TraceInput::Log(log_for(i, &format!("/bin/app{i}"), 100))).collect();
        let result = process(&VecSource::new(inputs), &PipelineConfig::default());
        assert!(result.outcomes.windows(2).all(|w| w[0].index < w[1].index));
        assert_eq!(result.funnel.unique_apps, 50);
    }

    #[test]
    fn explicit_thread_count_gives_same_answer() {
        let inputs: Vec<TraceInput> =
            (0..40).map(|i| TraceInput::Log(log_for(i % 5, "/bin/a", i as i64 * 10))).collect();
        let a = process(&VecSource::new(inputs.clone()), &PipelineConfig::default());
        let two = PipelineConfig { threads: Some(2), ..Default::default() };
        let b = process(&VecSource::new(inputs.clone()), &two);
        let one = PipelineConfig { threads: Some(1), ..Default::default() };
        let c = process(&VecSource::new(inputs), &one);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(b.outcomes, c.outcomes);
        assert_eq!(a.representatives, c.representatives);
    }

    #[test]
    fn aggregates_are_consistent() {
        let inputs = vec![
            TraceInput::Log(log_for(1, "/bin/a", 500 << 20)),
            TraceInput::Log(log_for(1, "/bin/a", 600 << 20)),
            TraceInput::Log(log_for(2, "/bin/b", 700 << 20)),
        ];
        let result = process(&VecSource::new(inputs), &PipelineConfig::default());
        assert_eq!(result.all_runs_counts().total, 3);
        assert_eq!(result.single_run_counts().total, 2);
        let jaccard = result.jaccard_single_run();
        assert!(!jaccard.categories.is_empty());
    }

    #[test]
    fn empty_source() {
        let result = process(&VecSource::new(vec![]), &PipelineConfig::default());
        assert_eq!(result.funnel.total, 0);
        assert!(result.outcomes.is_empty());
        assert!(result.representatives.is_empty());
    }

    #[test]
    fn progress_callback_fires_once_per_trace() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inputs: Vec<TraceInput> =
            (0..25).map(|i| TraceInput::Log(log_for(i, "/bin/a", 100))).collect();
        let calls = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let c2 = calls.clone();
        let m2 = max_seen.clone();
        let config = PipelineConfig {
            progress: Some(Arc::new(move |done, total| {
                assert_eq!(total, 25);
                c2.fetch_add(1, Ordering::Relaxed);
                m2.fetch_max(done, Ordering::Relaxed);
            })),
            ..Default::default()
        };
        let _ = process(&VecSource::new(inputs), &config);
        assert_eq!(calls.load(Ordering::Relaxed), 25);
        assert_eq!(max_seen.load(Ordering::Relaxed), 25);
    }

    #[test]
    fn partially_corrupt_log_is_sanitized_not_evicted() {
        let mut log = log_for(1, "/bin/a", 1000);
        // Add one bad record: negative bytes.
        let mut b = TraceLogBuilder::new(log.header().clone());
        let h = b.begin_record("/bad", 0);
        b.record_mut(h).set(C::BytesRead, -5);
        let extra = b.finish();
        let mut records = log.records().to_vec();
        records.extend(extra.records().iter().cloned());
        let mut names = log.names().clone();
        names.extend(extra.names().clone());
        log = TraceLog::from_parts(log.header().clone(), records, names);

        let result = process(
            &VecSource::new(vec![TraceInput::Log(log)]),
            &PipelineConfig::default(),
        );
        assert_eq!(result.funnel.valid, 1);
        assert_eq!(result.outcomes[0].sanitized_records, 1);
    }
}
