//! The parallel executor: fetch → parse → validate → categorize → aggregate.

use crate::dedup::{heaviest_per_app, AppKey};
use crate::funnel::FunnelStats;
use crate::source::{TraceInput, TraceSource};
use mosaic_core::category::Category;
use mosaic_core::report::CategoryCounts;
use mosaic_core::{Categorizer, CategorizerConfig, JaccardMatrix, TraceReport};
use mosaic_darshan::convert::usize_to_u64;
use mosaic_darshan::{mdf, validate, EvictClass, EvictReason, TraceLog};
use mosaic_obs::{
    MetricsReport, MetricsSnapshot, PipelineMetrics, Recorder, Span, SpanOutcome, Stage,
    TraceTimeline,
};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Progress callback: `(traces done, traces total, live recorder)`. Called
/// from worker threads; must be cheap and thread-safe. The recorder gives
/// renderers (e.g. [`mosaic_obs::ProgressLine`]) the live per-stage atomics
/// without any extra bookkeeping on the hot path.
pub type ProgressFn = Arc<dyn Fn(usize, usize, &Recorder) + Send + Sync>;

/// How byte-fed traces are parsed and carried through the funnel.
///
/// Both modes produce byte-identical [`PipelineResult`]s (the
/// `zerocopy-vs-owned` differential oracle pins this); they differ only in
/// allocation behaviour. Log-fed inputs ([`TraceInput::Log`]) always take
/// the owned path — there are no wire bytes to borrow from.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ParseMode {
    /// Borrowed [`mosaic_darshan::TraceView`] over the wire bytes plus a
    /// per-thread columnar arena: no per-record materialization, no
    /// per-trace interval vectors. The default.
    #[default]
    ZeroCopy,
    /// Decode into an owned [`TraceLog`] ([`mdf::from_bytes`]) and
    /// categorize through row-oriented `Vec<Operation>`s — the reference
    /// implementation, kept as the differential baseline.
    Owned,
}

/// Executor configuration.
#[derive(Clone, Default)]
pub struct PipelineConfig {
    /// Worker threads; `None` uses Rayon's global default (one per core).
    pub threads: Option<usize>,
    /// Categorizer thresholds.
    pub categorizer: CategorizerConfig,
    /// Optional progress callback, invoked after every ingested trace with
    /// a relaxed atomic counter — contention-free even at full parallelism.
    pub progress: Option<ProgressFn>,
    /// Structured span tracing: `Some(capacity)` records per-trace spans
    /// into a bounded ring of that many entries and attaches the resulting
    /// [`TraceTimeline`] to the [`PipelineResult`]. `None` (the default)
    /// keeps the aggregate metrics only — zero extra allocation per trace.
    pub trace_capacity: Option<usize>,
    /// Parse/carry strategy for byte-fed traces; see [`ParseMode`].
    pub parse_mode: ParseMode,
    /// Unified metrics registry: `true` attaches a
    /// [`mosaic_obs::PipelineMetrics`] (gauges, eviction-by-reason
    /// counters, per-worker utilization) and exports a
    /// [`MetricsSnapshot`] on the [`PipelineResult`]. `false` (the default)
    /// keeps the hot path allocation-free and byte-identical — the
    /// `metrics-on-vs-off` differential oracle pins this.
    pub metrics: bool,
}

impl std::fmt::Debug for PipelineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PipelineConfig")
            .field("threads", &self.threads)
            .field("categorizer", &self.categorizer)
            .field("progress", &self.progress.is_some())
            .field("trace_capacity", &self.trace_capacity)
            .field("parse_mode", &self.parse_mode)
            .field("metrics", &self.metrics)
            .finish()
    }
}

/// One valid trace's pipeline outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunOutcome {
    /// Index in the source.
    pub index: usize,
    /// Application grouping key.
    pub app_key: AppKey,
    /// I/O weight (total bytes moved) used by dedup.
    pub weight: i64,
    /// Number of records deleted by per-record sanitization.
    pub sanitized_records: usize,
    /// Job start (Unix seconds) — wallclock placement for interference
    /// analysis.
    pub start_time: i64,
    /// Job end (Unix seconds).
    pub end_time: i64,
    /// The full MOSAIC report.
    pub report: TraceReport,
}

/// Aggregated pipeline result.
#[derive(Debug, Clone)]
pub struct PipelineResult {
    /// Funnel accounting (Fig 3), with the typed eviction breakdown.
    pub funnel: FunnelStats,
    /// Valid traces, sorted by source index.
    pub outcomes: Vec<RunOutcome>,
    /// Positions (into `outcomes`) of the single-run representatives: the
    /// heaviest trace of each application.
    pub representatives: Vec<usize>,
    /// Per-stage timings and throughput for this run.
    pub metrics: MetricsReport,
    /// Structured span timeline, present when the run was configured with
    /// [`PipelineConfig::trace_capacity`]. Deliberately *not* part of any
    /// `ResultSnapshot`: timelines carry wall-clock values and must never
    /// feed the determinism oracles.
    pub timeline: Option<TraceTimeline>,
    /// The unified registry export, present when the run was configured
    /// with [`PipelineConfig::metrics`]. Like the timeline, it carries
    /// timing telemetry and is excluded from every `ResultSnapshot`.
    pub registry: Option<MetricsSnapshot>,
}

impl PipelineResult {
    /// Category sets of every valid run (the all-runs view).
    pub fn all_runs_sets(&self) -> Vec<BTreeSet<Category>> {
        self.outcomes.iter().map(|o| o.report.categories.clone()).collect()
    }

    /// Category sets of the single-run representatives.
    pub fn single_run_sets(&self) -> Vec<BTreeSet<Category>> {
        self.representatives().map(|o| o.report.categories.clone()).collect()
    }

    /// Category distribution over all valid runs (PFS-load view).
    pub fn all_runs_counts(&self) -> CategoryCounts {
        CategoryCounts::from_sets(self.all_runs_sets().iter())
    }

    /// Category distribution over the single-run set (application view).
    pub fn single_run_counts(&self) -> CategoryCounts {
        CategoryCounts::from_sets(self.single_run_sets().iter())
    }

    /// Jaccard matrix over the single-run set (Fig 5 is computed on the
    /// categorized, deduplicated traces).
    pub fn jaccard_single_run(&self) -> JaccardMatrix {
        JaccardMatrix::compute(&self.single_run_sets())
    }

    /// The representative outcomes themselves. Positions are produced by
    /// dedup over `outcomes`, so every one resolves; `filter_map` keeps the
    /// lookup off the panic path anyway.
    pub fn representatives(&self) -> impl Iterator<Item = &RunOutcome> + '_ {
        self.representatives.iter().filter_map(move |&p| self.outcomes.get(p))
    }
}

/// The fate of one ingested trace. Shared by the batch executor and the
/// incremental analyzer so both account evictions identically.
pub(crate) enum Ingested {
    /// The trace was evicted, with the typed reason.
    Evicted(EvictReason),
    /// The trace survived the funnel.
    Valid(Box<RunOutcome>),
}

/// The span class recorded on an eviction's terminal stage.
fn outcome_of(reason: EvictReason) -> SpanOutcome {
    match reason.class() {
        EvictClass::Io => SpanOutcome::IoError,
        EvictClass::Format => SpanOutcome::FormatCorrupt,
        EvictClass::Validation => SpanOutcome::Invalid,
    }
}

/// One trace's span identity — recorder, trace id, worker lane — threaded
/// through the stage call sites so each emits a full [`Span`] without
/// re-deriving the lane. `Copy`, stack-only: when tracing is off the spans
/// degenerate to the aggregate counters with zero extra allocation.
#[derive(Clone, Copy)]
pub(crate) struct SpanScope<'a> {
    recorder: &'a Recorder,
    trace: u64,
    worker: u64,
}

impl<'a> SpanScope<'a> {
    /// A scope for trace `index` on the current Rayon worker (lane
    /// `1 + pool index`; lane 0 is a caller outside any pool).
    pub(crate) fn current(recorder: &'a Recorder, index: usize) -> SpanScope<'a> {
        SpanScope {
            recorder,
            trace: usize_to_u64(index),
            worker: rayon::current_thread_index().map_or(0, |i| usize_to_u64(i) + 1),
        }
    }

    /// Record one completed stage span.
    pub(crate) fn emit(
        &self,
        stage: Stage,
        start_ns: u64,
        duration_ns: u64,
        bytes: u64,
        outcome: SpanOutcome,
        detail: Option<&str>,
    ) {
        self.recorder.span(Span {
            trace: self.trace,
            stage,
            start_ns,
            duration_ns,
            bytes,
            worker: self.worker,
            outcome,
            detail,
        });
    }

    /// Record a stage span that ends in eviction, count the eviction, and
    /// produce the funnel fate. The typed slug is materialized only when a
    /// tracer or a metrics registry is attached to consume it — the
    /// metrics-off hot path stays allocation-free.
    fn evict(
        &self,
        stage: Stage,
        start_ns: u64,
        duration_ns: u64,
        bytes: u64,
        reason: EvictReason,
    ) -> Ingested {
        self.recorder.count_eviction();
        let metrics = self.recorder.pipeline_metrics();
        let slug =
            if self.recorder.tracing() || metrics.is_some() { Some(reason.slug()) } else { None };
        if let (Some(metrics), Some(slug)) = (metrics, slug.as_deref()) {
            metrics.count_eviction(slug);
        }
        self.emit(stage, start_ns, duration_ns, bytes, outcome_of(reason), slug.as_deref());
        Ingested::Evicted(reason)
    }
}

thread_local! {
    /// The per-worker trace arena of the zero-copy path. Thread-local (not
    /// per-call) so steady-state ingestion reuses grown buffers instead of
    /// reallocating per trace; `ColumnarTrace::load` and the merge scratch
    /// only ever `clear()` it.
    static ARENA: std::cell::RefCell<mosaic_core::columnar::TraceArena> =
        std::cell::RefCell::new(mosaic_core::columnar::TraceArena::default());
}

/// The zero-copy ingest path: borrowed parse, borrowed validation, columnar
/// extraction into the worker's arena, arena categorization. Stage spans
/// mirror the owned path one-for-one (same stages, same outcomes).
fn ingest_zero_copy(
    bytes: &[u8],
    index: usize,
    categorizer: &Categorizer,
    recorder: &Recorder,
    scope: SpanScope<'_>,
    wire: u64,
) -> Ingested {
    let t0 = recorder.now_ns();
    let parsed = mosaic_darshan::TraceView::parse(bytes);
    let dur = recorder.now_ns().saturating_sub(t0);
    let view = match parsed {
        Ok(view) => {
            scope.emit(Stage::Parse, t0, dur, wire, SpanOutcome::Ok, None);
            view
        }
        Err(err) => return scope.evict(Stage::Parse, t0, dur, wire, EvictReason::from(&err)),
    };

    let t0 = recorder.now_ns();
    let report = mosaic_darshan::view::validate_view(&view);
    let dur = recorder.now_ns().saturating_sub(t0);
    if report.is_fatal() {
        return scope.evict(Stage::Validate, t0, dur, 0, report.evict_reason());
    }
    scope.emit(Stage::Validate, t0, dur, 0, SpanOutcome::Ok, None);
    // No delete pass: the arena load below skips the flagged records, which
    // is the zero-copy equivalent of `delete_invalid`.
    let sanitized_records = report.record_errors.len();

    ARENA.with(|cell| {
        let mut arena = cell.borrow_mut();
        arena.trace.load(&view, &report);
        if let Some(metrics) = recorder.pipeline_metrics() {
            let resident = arena.resident_bytes();
            metrics.arena_resident().set(resident);
            metrics.arena_peak().set_max(resident);
        }
        let t0 = recorder.now_ns();
        let (trace_report, timings) = categorizer.categorize_arena_timed(&mut arena);
        scope.emit(Stage::Merge, t0, timings.merge_nanos, 0, SpanOutcome::Ok, None);
        scope.emit(
            Stage::Categorize,
            t0.saturating_add(timings.merge_nanos),
            timings.total_nanos.saturating_sub(timings.merge_nanos),
            0,
            SpanOutcome::Ok,
            None,
        );
        Ingested::Valid(Box::new(RunOutcome {
            index,
            app_key: view.app_key(),
            weight: arena.trace.weight,
            sanitized_records,
            start_time: view.start_time,
            end_time: view.end_time,
            report: trace_report,
        }))
    })
}

/// Parse → validate → categorize one fetched input, recording per-stage
/// timings and spans. The fetch itself (and its span) is the caller's
/// business; the `Err` fate of a fetch is still accounted here so batch and
/// streaming funnels agree.
pub(crate) fn ingest_one(
    fetched: std::io::Result<TraceInput>,
    index: usize,
    categorizer: &Categorizer,
    recorder: &Recorder,
    mode: ParseMode,
) -> Ingested {
    let scope = SpanScope::current(recorder, index);
    let input = match fetched {
        Ok(input) => input,
        Err(_) => {
            recorder.count_eviction();
            if let Some(metrics) = recorder.pipeline_metrics() {
                metrics.count_eviction(&EvictReason::IoError.slug());
            }
            return Ingested::Evicted(EvictReason::IoError);
        }
    };
    let wire = usize_to_u64(input.wire_len());
    let log: Arc<TraceLog> = match input {
        TraceInput::Bytes(bytes) if mode == ParseMode::ZeroCopy => {
            return ingest_zero_copy(&bytes, index, categorizer, recorder, scope, wire);
        }
        TraceInput::Bytes(bytes) => {
            let t0 = recorder.now_ns();
            let parsed = mdf::from_bytes(&bytes);
            let dur = recorder.now_ns().saturating_sub(t0);
            match parsed {
                Ok(log) => {
                    scope.emit(Stage::Parse, t0, dur, wire, SpanOutcome::Ok, None);
                    Arc::new(log)
                }
                Err(err) => {
                    return scope.evict(Stage::Parse, t0, dur, wire, EvictReason::from(&err))
                }
            }
        }
        TraceInput::Log(log) => log,
    };

    // Validate copy-on-write: the read-only pass decides the fate; the log
    // is cloned out of its `Arc` only when records actually need deleting.
    let t0 = recorder.now_ns();
    let report = validate::validate(&log);
    let fate = if report.is_fatal() {
        Err(report.evict_reason())
    } else if report.record_errors.is_empty() {
        Ok((log, 0))
    } else {
        let mut owned = Arc::unwrap_or_clone(log);
        let deleted = validate::delete_invalid(&mut owned, &report);
        Ok((Arc::new(owned), deleted))
    };
    let dur = recorder.now_ns().saturating_sub(t0);
    let (log, sanitized_records) = match fate {
        Ok(pair) => pair,
        Err(reason) => return scope.evict(Stage::Validate, t0, dur, 0, reason),
    };
    scope.emit(Stage::Validate, t0, dur, 0, SpanOutcome::Ok, None);

    // Categorization times itself; merge starts at `t0` and the three
    // characterizations follow it, so the two spans tile the measured total.
    let t0 = recorder.now_ns();
    let (report, timings) = categorizer.categorize_log_timed(&log);
    scope.emit(Stage::Merge, t0, timings.merge_nanos, 0, SpanOutcome::Ok, None);
    scope.emit(
        Stage::Categorize,
        t0.saturating_add(timings.merge_nanos),
        timings.total_nanos.saturating_sub(timings.merge_nanos),
        0,
        SpanOutcome::Ok,
        None,
    );
    Ingested::Valid(Box::new(RunOutcome {
        index,
        app_key: log.header().app_key(),
        weight: log.io_weight(),
        sanitized_records,
        start_time: log.header().start_time,
        end_time: log.header().end_time,
        report,
    }))
}

/// A memoized Rayon pool per explicit thread count. Building a pool spawns
/// OS threads; repeated [`process`] calls with the same `threads: Some(n)`
/// must not pay that cost (or leak threads) every time.
fn pool_for(n: usize) -> Arc<rayon::ThreadPool> {
    static POOLS: OnceLock<Mutex<BTreeMap<usize, Arc<rayon::ThreadPool>>>> = OnceLock::new();
    let registry = POOLS.get_or_init(|| Mutex::new(BTreeMap::new()));
    // The registry holds only built pools; a panic elsewhere cannot leave it
    // half-written, so recovering from poisoning is sound.
    let mut pools = registry.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    pools
        .entry(n)
        .or_insert_with(|| {
            Arc::new(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(n)
                    .build()
                    // lint: allow(panic, "pool construction fails only on OS thread-spawn exhaustion at startup, not on trace input")
                    .expect("thread pool construction"),
            )
        })
        .clone()
}

/// Run the full pipeline over a source.
pub fn process<S: TraceSource>(source: &S, config: &PipelineConfig) -> PipelineResult {
    let categorizer = Categorizer::new(config.categorizer.clone());
    let mut recorder = match config.trace_capacity {
        Some(capacity) => Recorder::with_tracer(capacity),
        None => Recorder::new(),
    };
    if config.metrics {
        // Worker lanes are 1-based (lane 0 is a caller outside any pool),
        // so size for the pool width plus the coordinator lane.
        let lanes = config.threads.map_or_else(rayon::current_num_threads, |n| n.max(1));
        recorder = recorder.with_pipeline_metrics(Arc::new(PipelineMetrics::new(lanes + 1)));
    }
    let recorder = recorder;
    let done = AtomicUsize::new(0);
    let total = source.len();
    let run = || {
        (0..total)
            .into_par_iter()
            .map(|i| {
                let scope = SpanScope::current(&recorder, i);
                let metrics = recorder.pipeline_metrics();
                if let Some(metrics) = metrics {
                    metrics.inflight().add(1);
                }
                let t0 = recorder.now_ns();
                let fetched = source.fetch(i);
                let dur = recorder.now_ns().saturating_sub(t0);
                let wire = fetched.as_ref().map(|f| usize_to_u64(f.wire_len())).unwrap_or(0);
                let outcome = if fetched.is_ok() { SpanOutcome::Ok } else { SpanOutcome::IoError };
                scope.emit(Stage::Fetch, t0, dur, wire, outcome, None);
                let out = ingest_one(fetched, i, &categorizer, &recorder, config.parse_mode);
                if let Some(metrics) = metrics {
                    metrics.inflight().sub(1);
                }
                if let Some(progress) = &config.progress {
                    // lint: allow(sync, "pure progress counter: the value only feeds the monotonic done/total display and guards no shared state; ingest results flow through the scoped-join, not this count")
                    let n = done.fetch_add(1, Ordering::Relaxed) + 1;
                    progress(n, total, &recorder);
                }
                out
            })
            .collect::<Vec<Ingested>>()
    };
    let (ingested, workers) = match config.threads {
        Some(n) => (pool_for(n.max(1)).install(run), n.max(1)),
        None => (run(), rayon::current_num_threads()),
    };

    let mut funnel = FunnelStats { total, ..Default::default() };
    let mut outcomes: Vec<RunOutcome> = Vec::new();
    for item in ingested {
        match item {
            Ingested::Evicted(reason) => funnel.record_eviction(reason),
            Ingested::Valid(outcome) => outcomes.push(*outcome),
        }
    }
    funnel.valid = outcomes.len();

    let representatives = heaviest_per_app(outcomes.iter().map(|o| (o.app_key.clone(), o.weight)));
    funnel.unique_apps = representatives.len();

    let registry = recorder.pipeline_metrics().map(|m| {
        m.dedup_apps().set(usize_to_u64(representatives.len()));
        recorder.export_metrics()
    });
    let metrics = recorder.finish(usize_to_u64(total), workers);
    let timeline = recorder.timeline();
    PipelineResult { funnel, outcomes, representatives, metrics, timeline, registry }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{DirSource, VecSource};
    use mosaic_darshan::counter::PosixCounter as C;
    use mosaic_darshan::counter::PosixFCounter as F;
    use mosaic_darshan::job::JobHeader;
    use mosaic_darshan::log::TraceLogBuilder;
    use mosaic_darshan::ValidityError;

    fn log_for(uid: u32, exe: &str, bytes: i64) -> TraceLog {
        let mut b = TraceLogBuilder::new(JobHeader::new(1, uid, 4, 0, 1000).with_exe(exe));
        let r = b.begin_record("/in", -1);
        b.record_mut(r)
            .set(C::Reads, 4)
            .set(C::BytesRead, bytes)
            .set(C::Opens, 4)
            .setf(F::OpenStartTimestamp, 1.0)
            .setf(F::ReadStartTimestamp, 1.0)
            .setf(F::ReadEndTimestamp, 50.0);
        b.finish()
    }

    #[test]
    fn funnel_counts_each_fate() {
        let inputs = vec![
            TraceInput::log(log_for(1, "/bin/a", 1000)),
            TraceInput::bytes(vec![0u8, 1, 2, 3]), // format corrupt
            TraceInput::log({
                // fatally invalid: zero-runtime header
                let b = TraceLogBuilder::new(JobHeader::new(1, 1, 4, 5, 5));
                b.finish()
            }),
            TraceInput::log(log_for(1, "/bin/a", 2000)),
        ];
        let result = process(&VecSource::new(inputs), &PipelineConfig::default());
        assert_eq!(result.funnel.total, 4);
        assert_eq!(result.funnel.format_corrupt, 1);
        assert_eq!(result.funnel.invalid, 1);
        assert_eq!(result.funnel.valid, 2);
        assert_eq!(result.funnel.unique_apps, 1);
        assert_eq!(
            result.funnel.by_reason
                [&EvictReason::ValidationFatal(ValidityError::NonPositiveRuntime)],
            1
        );
    }

    #[test]
    fn taxonomy_sums_to_total_under_parallel_execution() {
        // A deliberately mixed bag, processed on an explicit 4-thread pool:
        // the typed reasons plus the valid count must account for every
        // single input — nothing double-counted, nothing lost.
        let valid_bytes = mdf::to_bytes(&log_for(1, "/bin/a", 1000));
        let mut bad_crc = valid_bytes.clone();
        let end = bad_crc.len() - 1;
        bad_crc[end] ^= 0xFF;
        let mut inputs = Vec::new();
        for i in 0..10u32 {
            inputs.push(TraceInput::log(log_for(i, "/bin/a", 1000)));
            // Too short to even hold the file header → truncated.
            inputs.push(TraceInput::bytes(b"garbage".to_vec()));
            // Long enough, but the magic is wrong.
            inputs.push(TraceInput::bytes(vec![b'X'; 64]));
            inputs.push(TraceInput::bytes(bad_crc.clone()));
            inputs.push(TraceInput::log(
                TraceLogBuilder::new(JobHeader::new(1, i, 4, 5, 5)).finish(),
            ));
        }
        let config = PipelineConfig { threads: Some(4), ..Default::default() };
        let result = process(&VecSource::new(inputs), &config);
        let f = &result.funnel;
        assert_eq!(f.total, 50);
        assert_eq!(f.valid, 10);
        assert_eq!(f.by_reason.values().sum::<usize>(), f.evicted());
        assert_eq!(f.evicted() + f.valid, f.total);
        assert_eq!(f.by_reason[&EvictReason::Truncated], 10);
        assert_eq!(f.by_reason[&EvictReason::BadMagic], 10);
        assert_eq!(f.by_reason[&EvictReason::ChecksumMismatch], 10);
        assert_eq!(
            f.by_reason[&EvictReason::ValidationFatal(ValidityError::NonPositiveRuntime)],
            10
        );
        assert_eq!(f.format_corrupt, 30);
    }

    #[test]
    fn unreadable_file_is_io_error_not_format_corruption() {
        let dir = std::env::temp_dir().join(format!("mosaic_exec_io_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bytes = mdf::to_bytes(&log_for(1, "/bin/a", 1000));
        std::fs::write(dir.join("ok.mdf"), &bytes).unwrap();
        std::fs::write(dir.join("vanishes.mdf"), &bytes).unwrap();
        let source = DirSource::scan(&dir).unwrap();
        std::fs::remove_file(dir.join("vanishes.mdf")).unwrap();

        let result = process(&source, &PipelineConfig::default());
        assert_eq!(result.funnel.total, 2);
        assert_eq!(result.funnel.io_error, 1);
        assert_eq!(result.funnel.format_corrupt, 0);
        assert_eq!(result.funnel.valid, 1);
        assert_eq!(result.funnel.by_reason[&EvictReason::IoError], 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_cover_every_stage() {
        let inputs: Vec<TraceInput> =
            (0..8).map(|i| TraceInput::bytes(mdf::to_bytes(&log_for(i, "/bin/a", 1000)))).collect();
        let result = process(&VecSource::new(inputs), &PipelineConfig::default());
        let m = &result.metrics;
        assert_eq!(m.traces, 8);
        assert!(m.bytes > 0, "parse stage must account wire bytes");
        assert_eq!(m.stages.len(), 5);
        for snap in &m.stages {
            assert_eq!(snap.calls, 8, "stage {} must run once per trace", snap.stage);
        }
        assert!(m.wall_seconds > 0.0);
        assert!(m.traces_per_second > 0.0);
    }

    #[test]
    fn explicit_pools_are_reused_across_process_calls() {
        let a = pool_for(3);
        let b = pool_for(3);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.current_num_threads(), 3);
        // And repeated runs through the public API keep working.
        let inputs: Vec<TraceInput> =
            (0..6).map(|i| TraceInput::log(log_for(i, "/bin/a", 100))).collect();
        let config = PipelineConfig { threads: Some(3), ..Default::default() };
        let one = process(&VecSource::new(inputs.clone()), &config);
        let two = process(&VecSource::new(inputs), &config);
        assert_eq!(one.outcomes, two.outcomes);
    }

    #[test]
    fn dedup_keeps_heaviest() {
        let inputs = vec![
            TraceInput::log(log_for(1, "/bin/a x", 1000)),
            TraceInput::log(log_for(1, "/bin/a y", 9000)),
            TraceInput::log(log_for(2, "/bin/b", 500)),
        ];
        let result = process(&VecSource::new(inputs), &PipelineConfig::default());
        assert_eq!(result.representatives.len(), 2);
        let reps: Vec<i64> = result.representatives().map(|o| o.weight).collect();
        assert!(reps.contains(&9000));
        assert!(!reps.contains(&1000));
    }

    #[test]
    fn outcomes_are_index_sorted_regardless_of_parallel_order() {
        let inputs: Vec<TraceInput> =
            (0..50).map(|i| TraceInput::log(log_for(i, &format!("/bin/app{i}"), 100))).collect();
        let result = process(&VecSource::new(inputs), &PipelineConfig::default());
        assert!(result.outcomes.windows(2).all(|w| w[0].index < w[1].index));
        assert_eq!(result.funnel.unique_apps, 50);
    }

    #[test]
    fn explicit_thread_count_gives_same_answer() {
        let inputs: Vec<TraceInput> =
            (0..40).map(|i| TraceInput::log(log_for(i % 5, "/bin/a", i as i64 * 10))).collect();
        let a = process(&VecSource::new(inputs.clone()), &PipelineConfig::default());
        let two = PipelineConfig { threads: Some(2), ..Default::default() };
        let b = process(&VecSource::new(inputs.clone()), &two);
        let one = PipelineConfig { threads: Some(1), ..Default::default() };
        let c = process(&VecSource::new(inputs), &one);
        assert_eq!(a.outcomes, b.outcomes);
        assert_eq!(b.outcomes, c.outcomes);
        assert_eq!(a.representatives, c.representatives);
    }

    #[test]
    fn aggregates_are_consistent() {
        let inputs = vec![
            TraceInput::log(log_for(1, "/bin/a", 500 << 20)),
            TraceInput::log(log_for(1, "/bin/a", 600 << 20)),
            TraceInput::log(log_for(2, "/bin/b", 700 << 20)),
        ];
        let result = process(&VecSource::new(inputs), &PipelineConfig::default());
        assert_eq!(result.all_runs_counts().total, 3);
        assert_eq!(result.single_run_counts().total, 2);
        let jaccard = result.jaccard_single_run();
        assert!(!jaccard.categories.is_empty());
    }

    #[test]
    fn empty_source() {
        let result = process(&VecSource::new(vec![]), &PipelineConfig::default());
        assert_eq!(result.funnel.total, 0);
        assert!(result.outcomes.is_empty());
        assert!(result.representatives.is_empty());
        assert_eq!(result.metrics.traces, 0);
    }

    #[test]
    fn progress_callback_fires_once_per_trace() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let inputs: Vec<TraceInput> =
            (0..25).map(|i| TraceInput::log(log_for(i, "/bin/a", 100))).collect();
        let calls = Arc::new(AtomicUsize::new(0));
        let max_seen = Arc::new(AtomicUsize::new(0));
        let c2 = calls.clone();
        let m2 = max_seen.clone();
        let config = PipelineConfig {
            progress: Some(Arc::new(move |done, total, recorder: &Recorder| {
                assert_eq!(total, 25);
                assert!(recorder.stage(Stage::Validate).calls() > 0);
                c2.fetch_add(1, Ordering::Relaxed);
                m2.fetch_max(done, Ordering::Relaxed);
            })),
            ..Default::default()
        };
        let _ = process(&VecSource::new(inputs), &config);
        assert_eq!(calls.load(Ordering::Relaxed), 25);
        assert_eq!(max_seen.load(Ordering::Relaxed), 25);
    }

    #[test]
    fn tracing_yields_identical_results_plus_a_timeline() {
        let inputs: Vec<TraceInput> = (0..12)
            .map(|i| TraceInput::bytes(mdf::to_bytes(&log_for(i, &format!("/bin/app{i}"), 1000))))
            .collect();
        let plain = process(&VecSource::new(inputs.clone()), &PipelineConfig::default());
        assert!(plain.timeline.is_none(), "tracing off must attach no timeline");

        let traced_cfg = PipelineConfig { trace_capacity: Some(1024), ..Default::default() };
        let traced = process(&VecSource::new(inputs), &traced_cfg);

        // The analytical result is byte-for-byte unaffected by tracing.
        assert_eq!(plain.funnel, traced.funnel);
        assert_eq!(plain.outcomes, traced.outcomes);
        assert_eq!(plain.representatives, traced.representatives);

        let timeline = traced.timeline.expect("tracing on must attach a timeline");
        assert_eq!(timeline.capacity, 1024);
        assert_eq!(timeline.recorded, 12 * 5, "five spans per fully-processed trace");
        assert_eq!(timeline.dropped, 0);
        for stage in Stage::ALL {
            let of_stage = timeline.events.iter().filter(|e| e.stage == stage).count();
            assert_eq!(of_stage, 12, "every trace must have a {stage} span");
        }
        let traces: BTreeSet<u64> = timeline.events.iter().map(|e| e.trace).collect();
        assert_eq!(traces, (0..12).collect::<BTreeSet<u64>>());
    }

    #[test]
    fn evicted_traces_carry_typed_outcomes_in_the_timeline() {
        let inputs = vec![
            TraceInput::bytes(mdf::to_bytes(&log_for(1, "/bin/a", 1000))),
            TraceInput::bytes(b"garbage".to_vec()), // truncated → format corrupt
            TraceInput::log({
                let b = TraceLogBuilder::new(JobHeader::new(1, 1, 4, 5, 5));
                b.finish() // zero runtime → validation fatal
            }),
        ];
        let config = PipelineConfig { trace_capacity: Some(64), ..Default::default() };
        let result = process(&VecSource::new(inputs), &config);
        let timeline = result.timeline.expect("tracing on");

        let parse_of = |trace: u64| {
            timeline.events.iter().find(|e| e.trace == trace && e.stage == Stage::Parse)
        };
        assert_eq!(parse_of(0).map(|e| e.outcome), Some(SpanOutcome::Ok));
        assert_eq!(parse_of(1).map(|e| e.outcome), Some(SpanOutcome::FormatCorrupt));
        let validate_2 = timeline
            .events
            .iter()
            .find(|e| e.trace == 2 && e.stage == Stage::Validate)
            .expect("validate span");
        assert_eq!(validate_2.outcome, SpanOutcome::Invalid);
        // The exemplar reservoir kept the typed slugs, not just the class.
        let parse_exemplars = &timeline.exemplars[Stage::Parse.index()];
        assert!(
            parse_exemplars.slowest.iter().any(|e| e.trace == 1 && e.outcome == "truncated"),
            "{parse_exemplars:?}"
        );
        assert!(timeline.exemplars[Stage::Validate.index()]
            .slowest
            .iter()
            .any(|e| e.trace == 2 && e.outcome == "validation:non_positive_runtime"));
    }

    #[test]
    fn metrics_yield_identical_results_plus_a_registry_export() {
        let inputs: Vec<TraceInput> = (0..10)
            .map(|i| TraceInput::bytes(mdf::to_bytes(&log_for(i, &format!("/bin/app{i}"), 1000))))
            .chain(std::iter::once(TraceInput::bytes(b"garbage".to_vec())))
            .collect();
        let plain = process(&VecSource::new(inputs.clone()), &PipelineConfig::default());
        assert!(plain.registry.is_none(), "metrics off must attach no registry");

        let cfg = PipelineConfig { metrics: true, ..Default::default() };
        let metered = process(&VecSource::new(inputs), &cfg);

        // The analytical result is byte-for-byte unaffected by metrics.
        assert_eq!(plain.funnel, metered.funnel);
        assert_eq!(plain.outcomes, metered.outcomes);
        assert_eq!(plain.representatives, metered.representatives);

        let registry = metered.registry.expect("metrics on must attach a registry");
        let family = |name: &str| {
            registry.families.iter().find(|f| f.name == name).unwrap_or_else(|| {
                panic!("missing family {name}");
            })
        };
        assert_eq!(family("mosaic.dedup.apps").samples[0].value, 10.0);
        assert_eq!(family("mosaic.pipeline.traces.inflight").samples[0].value, 0.0);
        let evictions = family("mosaic.pipeline.evictions");
        assert_eq!(evictions.samples.len(), 1);
        assert_eq!(evictions.samples[0].labels[0], ("reason".to_owned(), "truncated".to_owned()));
        assert_eq!(evictions.samples[0].value, 1.0);
        assert!(
            family("mosaic.arena.peak_bytes").samples[0].value > 0.0,
            "zero-copy default must report arena residency"
        );
        let latency = family("mosaic.stage.latency_ns");
        let parse = latency
            .samples
            .iter()
            .find(|s| s.labels.iter().any(|(_, v)| v == "parse"))
            .expect("parse latency sample");
        assert_eq!(parse.count, 11, "every input reaches parse");
        let busy: f64 = family("mosaic.worker.busy_ns").samples.iter().map(|s| s.value).sum();
        assert!(busy > 0.0, "span durations must feed worker lanes");
        // Exposition of the export is valid OpenMetrics.
        let text = registry.to_openmetrics();
        assert!(text.contains("# TYPE mosaic_stage_latency_ns summary"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn parse_modes_agree_on_mixed_inputs() {
        // Valid, corrupt, fatally-invalid, and partially-corrupt byte-fed
        // traces: both parse modes must produce identical funnels, outcomes,
        // and representatives — and the same span structure when traced.
        let mut partially_bad =
            TraceLogBuilder::new(JobHeader::new(3, 7, 4, 0, 1000).with_exe("/bin/m"));
        let g = partially_bad.begin_record("/good", 0);
        partially_bad
            .record_mut(g)
            .set(C::Writes, 2)
            .set(C::BytesWritten, 600 << 20)
            .setf(F::WriteStartTimestamp, 900.0)
            .setf(F::WriteEndTimestamp, 960.0);
        let bad = partially_bad.begin_record("/bad", 0);
        partially_bad.record_mut(bad).set(C::BytesRead, -5);
        let inputs: Vec<TraceInput> = vec![
            TraceInput::bytes(mdf::to_bytes(&log_for(1, "/bin/a", 900 << 20))),
            TraceInput::bytes(b"garbage".to_vec()),
            TraceInput::bytes(mdf::to_bytes(
                &TraceLogBuilder::new(JobHeader::new(1, 1, 4, 5, 5)).finish(),
            )),
            TraceInput::bytes(mdf::to_bytes(&partially_bad.finish())),
            TraceInput::log(log_for(2, "/bin/b", 700 << 20)),
        ];
        let zc_cfg = PipelineConfig { trace_capacity: Some(256), ..Default::default() };
        assert_eq!(zc_cfg.parse_mode, ParseMode::ZeroCopy, "zero-copy must be the default");
        let owned_cfg = PipelineConfig {
            parse_mode: ParseMode::Owned,
            trace_capacity: Some(256),
            ..zc_cfg.clone()
        };
        let zc = process(&VecSource::new(inputs.clone()), &zc_cfg);
        let owned = process(&VecSource::new(inputs), &owned_cfg);
        assert_eq!(zc.funnel, owned.funnel);
        assert_eq!(zc.outcomes, owned.outcomes);
        assert_eq!(zc.representatives, owned.representatives);
        assert_eq!(zc.outcomes[1].sanitized_records, 1, "partial corruption sanitized");
        let spans = |r: &PipelineResult| {
            let t = r.timeline.as_ref().expect("traced");
            t.events
                .iter()
                .map(|e| (e.trace, format!("{:?}", e.stage), format!("{:?}", e.outcome)))
                .collect::<BTreeSet<_>>()
        };
        assert_eq!(spans(&zc), spans(&owned), "span structure must match stage-for-stage");
    }

    #[test]
    fn partially_corrupt_log_is_sanitized_not_evicted() {
        let mut log = log_for(1, "/bin/a", 1000);
        // Add one bad record: negative bytes.
        let mut b = TraceLogBuilder::new(log.header().clone());
        let h = b.begin_record("/bad", 0);
        b.record_mut(h).set(C::BytesRead, -5);
        let extra = b.finish();
        let mut records = log.records().to_vec();
        records.extend(extra.records().iter().cloned());
        let mut names = log.names().clone();
        names.extend(extra.names().clone());
        log = TraceLog::from_parts(log.header().clone(), records, names);

        let result =
            process(&VecSource::new(vec![TraceInput::log(log)]), &PipelineConfig::default());
        assert_eq!(result.funnel.valid, 1);
        assert_eq!(result.outcomes[0].sanitized_records, 1);
    }
}
