//! Per-application categorization stability (§III-B1).
//!
//! The paper justifies deduplication by measuring how consistently the runs
//! of one application categorize: ≈97 % of LAMMPS' ~12,000 runs and ≈80 %
//! of NEK5000's runs land in the same categories. This module computes that
//! statistic: for each application, the fraction of its runs whose category
//! set equals the application's *modal* (most common) category set.

use crate::dedup::{group_by_app, AppKey};
use crate::executor::RunOutcome;
use mosaic_core::category::Category;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Stability of one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppStability {
    /// The application key.
    pub app: AppKey,
    /// Number of (valid) runs observed.
    pub runs: usize,
    /// Runs sharing the modal category set.
    pub modal_runs: usize,
    /// The modal category set itself.
    pub modal_categories: BTreeSet<Category>,
}

impl AppStability {
    /// Fraction of runs in the modal set.
    pub fn stability(&self) -> f64 {
        if self.runs == 0 {
            1.0
        } else {
            self.modal_runs as f64 / self.runs as f64
        }
    }
}

/// Compute stability per application from pipeline outcomes. Only apps with
/// at least `min_runs` runs are reported (stability of a single run is
/// vacuous).
pub fn app_stability(outcomes: &[RunOutcome], min_runs: usize) -> Vec<AppStability> {
    let groups = group_by_app(outcomes.iter().map(|o| o.app_key.clone()));
    let mut out = Vec::new();
    for (app, positions) in groups {
        if positions.len() < min_runs {
            continue;
        }
        let mut freq: BTreeMap<&BTreeSet<Category>, usize> = BTreeMap::new();
        for &p in &positions {
            *freq.entry(&outcomes[p].report.categories).or_insert(0) += 1;
        }
        let (modal_set, modal_runs) = freq
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1))
            .map(|(s, n)| (s.clone(), n))
            .expect("non-empty group");
        out.push(AppStability {
            app,
            runs: positions.len(),
            modal_runs,
            modal_categories: modal_set,
        });
    }
    // Most-run apps first, like the paper's LAMMPS/NEK5000 discussion.
    out.sort_by_key(|s| std::cmp::Reverse(s.runs));
    out
}

/// Weighted mean stability over a set of applications (weight = run count).
pub fn mean_stability(stats: &[AppStability]) -> f64 {
    let total: usize = stats.iter().map(|s| s.runs).sum();
    if total == 0 {
        return 1.0;
    }
    stats.iter().map(|s| s.modal_runs).sum::<usize>() as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_core::{Categorizer, CategorizerConfig};
    use mosaic_darshan::ops::{OpKind, Operation, OperationView};

    fn outcome(index: usize, uid: u32, app: &str, read_bytes: u64) -> RunOutcome {
        let view = OperationView {
            runtime: 1000.0,
            nprocs: 4,
            reads: vec![Operation {
                kind: OpKind::Read,
                start: 1.0,
                end: 20.0,
                bytes: read_bytes,
                ranks: 4,
            }],
            writes: vec![],
            meta: vec![],
        };
        let report = Categorizer::new(CategorizerConfig::default()).categorize(&view);
        RunOutcome {
            index,
            app_key: (uid, app.to_owned()),
            weight: read_bytes as i64,
            sanitized_records: 0,
            start_time: 0,
            end_time: 1000,
            report,
        }
    }

    #[test]
    fn stable_app_scores_one() {
        let outcomes: Vec<RunOutcome> = (0..10).map(|i| outcome(i, 1, "lmp", 500 << 20)).collect();
        let stats = app_stability(&outcomes, 2);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].stability(), 1.0);
        assert_eq!(stats[0].runs, 10);
        assert_eq!(mean_stability(&stats), 1.0);
    }

    #[test]
    fn unstable_app_scores_fractionally() {
        // 7 significant runs, 3 quiet runs → modal = significant, 0.7.
        let mut outcomes: Vec<RunOutcome> =
            (0..7).map(|i| outcome(i, 1, "nek", 500 << 20)).collect();
        outcomes.extend((7..10).map(|i| outcome(i, 1, "nek", 1 << 20)));
        let stats = app_stability(&outcomes, 2);
        assert_eq!(stats[0].modal_runs, 7);
        assert!((stats[0].stability() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn min_runs_filters_singletons() {
        let outcomes = vec![outcome(0, 1, "a", 100), outcome(1, 2, "b", 100)];
        assert!(app_stability(&outcomes, 2).is_empty());
        assert_eq!(app_stability(&outcomes, 1).len(), 2);
    }

    #[test]
    fn sorted_by_run_count() {
        let mut outcomes: Vec<RunOutcome> = (0..5).map(|i| outcome(i, 1, "big", 100)).collect();
        outcomes.extend((5..7).map(|i| outcome(i, 2, "small", 100)));
        let stats = app_stability(&outcomes, 1);
        assert_eq!(stats[0].app.1, "big");
        assert_eq!(stats[1].app.1, "small");
    }

    #[test]
    fn empty_outcomes() {
        assert!(app_stability(&[], 1).is_empty());
        assert_eq!(mean_stability(&[]), 1.0);
    }
}
