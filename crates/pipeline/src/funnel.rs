//! Pre-processing funnel accounting (Fig 3).
//!
//! The paper's funnel over Blue Waters 2019: 462,502 traces → 32 % evicted
//! as corrupted → 8 % of the valid remainder are unique executions →
//! 24,606 traces retained for categorization.
//!
//! Beyond the paper's single "corrupted" bucket, every eviction carries a
//! typed [`EvictReason`] so operators can tell an unreadable file
//! (`io_error`) from a truncated one (`truncated`) from a semantically
//! broken one (`validation:…`). The coarse `io_error` / `format_corrupt` /
//! `invalid` counters are exact roll-ups of `by_reason` by
//! [`EvictClass`].

use mosaic_darshan::{EvictClass, EvictReason};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Counters of the pre-processing funnel.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FunnelStats {
    /// Traces presented to the pipeline.
    pub total: usize,
    /// Evicted because the input could not be read at all (I/O failure —
    /// the bytes never arrived, nothing can be said about their format).
    #[serde(default)]
    pub io_error: usize,
    /// Evicted because the bytes did not parse (format corruption).
    pub format_corrupt: usize,
    /// Evicted because validation failed fatally (semantic corruption).
    pub invalid: usize,
    /// Traces surviving validation.
    pub valid: usize,
    /// Distinct `(uid, application)` groups among valid traces — the
    /// retained single-run set.
    pub unique_apps: usize,
    /// Exact eviction counts by typed reason. Sums to
    /// [`FunnelStats::evicted`]; serialized as a JSON object keyed by the
    /// reason slug.
    #[serde(default)]
    pub by_reason: BTreeMap<EvictReason, usize>,
}

impl FunnelStats {
    /// Account one eviction under its typed reason, rolling it up into the
    /// matching coarse counter.
    pub fn record_eviction(&mut self, reason: EvictReason) {
        match reason.class() {
            EvictClass::Io => self.io_error += 1,
            EvictClass::Format => self.format_corrupt += 1,
            EvictClass::Validation => self.invalid += 1,
        }
        *self.by_reason.entry(reason).or_insert(0) += 1;
    }

    /// Total evicted traces.
    pub fn evicted(&self) -> usize {
        self.io_error + self.format_corrupt + self.invalid
    }

    /// Fraction of traces evicted as corrupted (paper: 0.32).
    pub fn corruption_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.evicted() as f64 / self.total as f64
        }
    }

    /// Unique executions as a fraction of valid traces (paper: 0.08).
    pub fn unique_fraction(&self) -> f64 {
        if self.valid == 0 {
            0.0
        } else {
            self.unique_apps as f64 / self.valid as f64
        }
    }

    /// Render the Fig 3 funnel as text, with the typed eviction breakdown
    /// appended when present.
    pub fn render(&self) -> String {
        let mut out = format!(
            "input traces        {:>10}\n\
             ├─ io-error         {:>10}\n\
             ├─ format-corrupt   {:>10}\n\
             ├─ invalid          {:>10}   ({:.0}% evicted)\n\
             └─ valid            {:>10}\n\
             unique applications {:>10}   ({:.0}% of valid)\n\
             retained for categorization {:>2}",
            self.total,
            self.io_error,
            self.format_corrupt,
            self.invalid,
            100.0 * self.corruption_fraction(),
            self.valid,
            self.unique_apps,
            100.0 * self.unique_fraction(),
            self.unique_apps,
        );
        if !self.by_reason.is_empty() {
            out.push_str("\neviction reasons:");
            for (reason, count) in &self.by_reason {
                out.push_str(&format!("\n  {:<28} {:>10}", reason.slug(), count));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_darshan::ValidityError;

    #[test]
    fn fractions() {
        let f = FunnelStats {
            total: 1000,
            io_error: 20,
            format_corrupt: 180,
            invalid: 120,
            valid: 680,
            unique_apps: 54,
            ..Default::default()
        };
        assert_eq!(f.evicted(), 320);
        assert!((f.corruption_fraction() - 0.32).abs() < 1e-12);
        assert!((f.unique_fraction() - 54.0 / 680.0).abs() < 1e-12);
    }

    #[test]
    fn empty_funnel() {
        let f = FunnelStats::default();
        assert_eq!(f.corruption_fraction(), 0.0);
        assert_eq!(f.unique_fraction(), 0.0);
    }

    #[test]
    fn record_eviction_rolls_up_by_class() {
        let mut f = FunnelStats { total: 5, ..Default::default() };
        f.record_eviction(EvictReason::IoError);
        f.record_eviction(EvictReason::BadMagic);
        f.record_eviction(EvictReason::BadMagic);
        f.record_eviction(EvictReason::ValidationFatal(ValidityError::ZeroProcs));
        f.record_eviction(EvictReason::AllRecordsInvalid);
        assert_eq!(f.io_error, 1);
        assert_eq!(f.format_corrupt, 2);
        assert_eq!(f.invalid, 2);
        assert_eq!(f.evicted(), 5);
        assert_eq!(f.by_reason.values().sum::<usize>(), f.evicted());
        assert_eq!(f.by_reason[&EvictReason::BadMagic], 2);
    }

    #[test]
    fn serde_round_trips_with_reason_map() {
        let mut f = FunnelStats { total: 3, valid: 1, unique_apps: 1, ..Default::default() };
        f.record_eviction(EvictReason::Truncated);
        f.record_eviction(EvictReason::ValidationFatal(ValidityError::NonPositiveRuntime));
        let json = serde_json::to_string(&f).unwrap();
        assert!(json.contains("\"truncated\""), "{json}");
        assert!(json.contains("\"validation:non_positive_runtime\""), "{json}");
        let back: FunnelStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, f);
        // Old serialized funnels (without the new fields) still load.
        let legacy: FunnelStats = serde_json::from_str(
            r#"{"total":10,"format_corrupt":2,"invalid":1,"valid":7,"unique_apps":3}"#,
        )
        .unwrap();
        assert_eq!(legacy.evicted(), 3);
        assert!(legacy.by_reason.is_empty());
    }

    #[test]
    fn render_mentions_the_numbers() {
        let mut f = FunnelStats {
            total: 462_502,
            io_error: 2_000,
            format_corrupt: 98_000,
            invalid: 48_000,
            valid: 314_502,
            unique_apps: 24_606,
            ..Default::default()
        };
        f.by_reason.insert(EvictReason::ChecksumMismatch, 98_000);
        let text = f.render();
        assert!(text.contains("462502"));
        assert!(text.contains("24606"));
        assert!(text.contains("32% evicted"));
        assert!(text.contains("checksum_mismatch"));
    }
}
