//! Pre-processing funnel accounting (Fig 3).
//!
//! The paper's funnel over Blue Waters 2019: 462,502 traces → 32 % evicted
//! as corrupted → 8 % of the valid remainder are unique executions →
//! 24,606 traces retained for categorization.

use serde::{Deserialize, Serialize};

/// Counters of the pre-processing funnel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FunnelStats {
    /// Traces presented to the pipeline.
    pub total: usize,
    /// Evicted because the bytes did not parse (format corruption).
    pub format_corrupt: usize,
    /// Evicted because validation failed fatally (semantic corruption).
    pub invalid: usize,
    /// Traces surviving validation.
    pub valid: usize,
    /// Distinct `(uid, application)` groups among valid traces — the
    /// retained single-run set.
    pub unique_apps: usize,
}

impl FunnelStats {
    /// Total evicted traces.
    pub fn evicted(&self) -> usize {
        self.format_corrupt + self.invalid
    }

    /// Fraction of traces evicted as corrupted (paper: 0.32).
    pub fn corruption_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.evicted() as f64 / self.total as f64
        }
    }

    /// Unique executions as a fraction of valid traces (paper: 0.08).
    pub fn unique_fraction(&self) -> f64 {
        if self.valid == 0 {
            0.0
        } else {
            self.unique_apps as f64 / self.valid as f64
        }
    }

    /// Render the Fig 3 funnel as text.
    pub fn render(&self) -> String {
        format!(
            "input traces        {:>10}\n\
             ├─ format-corrupt   {:>10}\n\
             ├─ invalid          {:>10}   ({:.0}% evicted)\n\
             └─ valid            {:>10}\n\
             unique applications {:>10}   ({:.0}% of valid)\n\
             retained for categorization {:>2}",
            self.total,
            self.format_corrupt,
            self.invalid,
            100.0 * self.corruption_fraction(),
            self.valid,
            self.unique_apps,
            100.0 * self.unique_fraction(),
            self.unique_apps,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions() {
        let f = FunnelStats {
            total: 1000,
            format_corrupt: 200,
            invalid: 120,
            valid: 680,
            unique_apps: 54,
        };
        assert_eq!(f.evicted(), 320);
        assert!((f.corruption_fraction() - 0.32).abs() < 1e-12);
        assert!((f.unique_fraction() - 54.0 / 680.0).abs() < 1e-12);
    }

    #[test]
    fn empty_funnel() {
        let f = FunnelStats::default();
        assert_eq!(f.corruption_fraction(), 0.0);
        assert_eq!(f.unique_fraction(), 0.0);
    }

    #[test]
    fn render_mentions_the_numbers() {
        let f = FunnelStats {
            total: 462_502,
            format_corrupt: 100_000,
            invalid: 48_000,
            valid: 314_502,
            unique_apps: 24_606,
        };
        let text = f.render();
        assert!(text.contains("462502"));
        assert!(text.contains("24606"));
        assert!(text.contains("32% evicted"));
    }
}
