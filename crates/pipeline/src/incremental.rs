//! Incremental (watch-folder) analysis.
//!
//! On a production machine Darshan logs appear one at a time as jobs
//! finish; a monitoring deployment wants the MOSAIC statistics updated
//! continuously, not recomputed from scratch each night. The
//! [`IncrementalAnalyzer`] folds traces in as they arrive and maintains:
//!
//! * the funnel counters,
//! * the all-runs category distribution (exact),
//! * the single-run (heaviest per application) distribution, updated by
//!   swapping a group's representative when a heavier run arrives,
//! * per-application run counts and modal categories for stability.
//!
//! Ingestion cost per trace is the categorization itself plus `O(log apps)`
//! bookkeeping; memory is `O(applications)`, not `O(traces)`.

use crate::dedup::AppKey;
use crate::executor::{ingest_one, Ingested};
use crate::funnel::FunnelStats;
use crate::source::TraceInput;
use mosaic_core::category::Category;
use mosaic_core::report::CategoryCounts;
use mosaic_core::{Categorizer, CategorizerConfig, TraceReport};
use mosaic_obs::{
    MetricsReport, MetricsSnapshot, MetricsWindow, PipelineMetrics, Recorder, TraceTimeline,
};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// Per-application incremental state.
#[derive(Debug, Clone)]
pub struct AppState {
    /// Valid runs seen.
    pub runs: usize,
    /// I/O weight of the heaviest run so far.
    pub best_weight: i64,
    /// Category set of the heaviest run (the group's representative).
    pub representative: BTreeSet<Category>,
    /// Frequency of each distinct category set (for modal stability).
    pub set_counts: BTreeMap<BTreeSet<Category>, usize>,
}

impl AppState {
    /// Fraction of runs sharing the modal category set.
    pub fn stability(&self) -> f64 {
        let modal = self.set_counts.values().copied().max().unwrap_or(0);
        if self.runs == 0 {
            1.0
        } else {
            modal as f64 / self.runs as f64
        }
    }
}

/// Streaming MOSAIC analyzer.
pub struct IncrementalAnalyzer {
    categorizer: Categorizer,
    funnel: FunnelStats,
    all_runs: CategoryCounts,
    apps: BTreeMap<AppKey, AppState>,
    recorder: Recorder,
    window: Option<MetricsWindow>,
}

impl IncrementalAnalyzer {
    /// New analyzer with the given thresholds.
    pub fn new(config: CategorizerConfig) -> Self {
        IncrementalAnalyzer {
            categorizer: Categorizer::new(config),
            funnel: FunnelStats::default(),
            all_runs: CategoryCounts::default(),
            apps: BTreeMap::new(),
            recorder: Recorder::new(),
            window: None,
        }
    }

    /// New analyzer with structured span tracing enabled: per-trace spans
    /// land in a ring of `capacity` entries, snapshotted by
    /// [`IncrementalAnalyzer::timeline`]. The analytical results are
    /// identical to an untraced analyzer's.
    pub fn with_tracing(config: CategorizerConfig, capacity: usize) -> Self {
        IncrementalAnalyzer { recorder: Recorder::with_tracer(capacity), ..Self::new(config) }
    }

    /// New analyzer with the unified metrics registry and a bounded
    /// health-history window: a full registry snapshot is taken every
    /// `every` ingested traces (counting evicted ones) and the latest
    /// `capacity` snapshots are retained — the queryable per-shard health
    /// primitive for a `mosaic serve` deployment. Analytical results are
    /// identical to a plain analyzer's.
    pub fn with_metrics(config: CategorizerConfig, every: u64, capacity: usize) -> Self {
        IncrementalAnalyzer {
            recorder: Recorder::new().with_pipeline_metrics(Arc::new(PipelineMetrics::new(1))),
            window: Some(MetricsWindow::new(every, capacity)),
            ..Self::new(config)
        }
    }

    /// The health-history window; `None` unless built by
    /// [`IncrementalAnalyzer::with_metrics`].
    pub fn window(&self) -> Option<&MetricsWindow> {
        self.window.as_ref()
    }

    /// A current registry export; `None` unless built by
    /// [`IncrementalAnalyzer::with_metrics`].
    pub fn metrics_snapshot(&self) -> Option<MetricsSnapshot> {
        self.recorder.pipeline_metrics().map(|_| self.recorder.export_metrics())
    }

    /// Snapshot the span timeline accumulated so far; `None` unless the
    /// analyzer was built by [`IncrementalAnalyzer::with_tracing`].
    pub fn timeline(&self) -> Option<TraceTimeline> {
        self.recorder.timeline()
    }

    /// Ingest one trace. Returns the report for valid traces, `None` for
    /// evicted ones.
    pub fn ingest(&mut self, input: TraceInput) -> Option<TraceReport> {
        self.ingest_fetched(Ok(input))
    }

    /// Ingest one fetch result, accounting `Err` as an I/O eviction — the
    /// streaming twin of the batch executor's per-trace path (both run the
    /// same ingest code, so the funnels agree exactly).
    pub fn ingest_fetched(&mut self, fetched: std::io::Result<TraceInput>) -> Option<TraceReport> {
        let index = self.funnel.total;
        self.funnel.total += 1;
        let outcome = match ingest_one(
            fetched,
            index,
            &self.categorizer,
            &self.recorder,
            crate::executor::ParseMode::default(),
        ) {
            Ingested::Evicted(reason) => {
                self.funnel.record_eviction(reason);
                self.offer_window();
                return None;
            }
            Ingested::Valid(outcome) => outcome,
        };
        self.funnel.valid += 1;

        let report = outcome.report;
        self.all_runs.add(&report.categories);

        let state = self.apps.entry(outcome.app_key).or_insert_with(|| AppState {
            runs: 0,
            best_weight: i64::MIN,
            representative: BTreeSet::new(),
            set_counts: BTreeMap::new(),
        });
        state.runs += 1;
        *state.set_counts.entry(report.categories.clone()).or_insert(0) += 1;
        if outcome.weight > state.best_weight {
            state.best_weight = outcome.weight;
            state.representative = report.categories.clone();
        }
        self.funnel.unique_apps = self.apps.len();
        if let Some(metrics) = self.recorder.pipeline_metrics() {
            metrics.dedup_apps().set(mosaic_darshan::convert::usize_to_u64(self.apps.len()));
        }
        self.offer_window();
        Some(report)
    }

    /// Offer the health window a snapshot opportunity at the current ingest
    /// count. The registry export runs only when an interval boundary has
    /// actually passed; without a window this is a no-op.
    fn offer_window(&mut self) {
        let total = mosaic_darshan::convert::usize_to_u64(self.funnel.total);
        let recorder = &self.recorder;
        if let Some(window) = self.window.as_mut() {
            window.offer(total, || recorder.export_metrics());
        }
    }

    /// Current funnel counters.
    pub fn funnel(&self) -> &FunnelStats {
        &self.funnel
    }

    /// Per-stage timings and throughput since construction. Streaming is
    /// single-threaded, so `workers` is 1.
    pub fn metrics(&self) -> MetricsReport {
        self.recorder.finish(mosaic_darshan::convert::usize_to_u64(self.funnel.total), 1)
    }

    /// Current all-runs distribution (exact, streaming).
    pub fn all_runs_counts(&self) -> &CategoryCounts {
        &self.all_runs
    }

    /// Current single-run distribution (recomputed from the per-app
    /// representatives — `O(apps)`).
    pub fn single_run_counts(&self) -> CategoryCounts {
        CategoryCounts::from_sets(self.apps.values().map(|s| &s.representative))
    }

    /// Per-application state, keyed by `(uid, app)`.
    pub fn apps(&self) -> &BTreeMap<AppKey, AppState> {
        &self.apps
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{process, PipelineConfig};
    use crate::source::{TraceSource, VecSource};
    use mosaic_darshan::counter::PosixCounter as C;
    use mosaic_darshan::counter::PosixFCounter as F;
    use mosaic_darshan::job::JobHeader;
    use mosaic_darshan::log::TraceLogBuilder;
    use mosaic_darshan::{mdf, TraceLog};

    fn log_for(uid: u32, exe: &str, bytes: i64) -> TraceLog {
        let mut b = TraceLogBuilder::new(JobHeader::new(1, uid, 4, 0, 1000).with_exe(exe));
        let r = b.begin_record("/in", -1);
        b.record_mut(r)
            .set(C::Reads, 4)
            .set(C::BytesRead, bytes)
            .set(C::Opens, 4)
            .setf(F::OpenStartTimestamp, 1.0)
            .setf(F::ReadStartTimestamp, 1.0)
            .setf(F::ReadEndTimestamp, 50.0);
        b.finish()
    }

    #[test]
    fn streaming_matches_batch_processing() {
        // The incremental analyzer must agree with the batch pipeline on
        // every aggregate, for the same inputs in any order.
        let inputs: Vec<TraceInput> = (0..40)
            .map(|i| {
                if i % 7 == 0 {
                    TraceInput::bytes(vec![9u8; 16]) // corrupt
                } else {
                    TraceInput::log(log_for(
                        i % 4,
                        &format!("/bin/app{}", i % 4),
                        (i as i64 + 1) << 20,
                    ))
                }
            })
            .collect();

        let batch = process(&VecSource::new(inputs.clone()), &PipelineConfig::default());

        let mut inc = IncrementalAnalyzer::new(CategorizerConfig::default());
        for input in inputs {
            inc.ingest(input);
        }

        assert_eq!(inc.funnel(), &batch.funnel);
        assert_eq!(inc.all_runs_counts(), &batch.all_runs_counts());
        assert_eq!(inc.single_run_counts(), batch.single_run_counts());
        // The streaming recorder saw the same per-trace stages.
        let metrics = inc.metrics();
        assert_eq!(metrics.traces, 40);
        assert!(metrics.stages.iter().any(|s| s.stage == "parse" && s.calls > 0));
    }

    #[test]
    fn traced_streaming_matches_untraced_and_keeps_spans() {
        let inputs: Vec<TraceInput> = (0..10)
            .map(|i| {
                if i == 3 {
                    TraceInput::bytes(vec![0u8; 8]) // corrupt
                } else {
                    TraceInput::bytes(mdf::to_bytes(&log_for(i, "/bin/app", (i as i64 + 1) << 20)))
                }
            })
            .collect();

        let mut plain = IncrementalAnalyzer::new(CategorizerConfig::default());
        let mut traced = IncrementalAnalyzer::with_tracing(CategorizerConfig::default(), 256);
        assert!(plain.timeline().is_none());
        for input in inputs {
            plain.ingest(input.clone());
            traced.ingest(input);
        }

        assert_eq!(plain.funnel(), traced.funnel());
        assert_eq!(plain.all_runs_counts(), traced.all_runs_counts());
        assert_eq!(plain.single_run_counts(), traced.single_run_counts());

        let timeline = traced.timeline().expect("tracing enabled");
        assert_eq!(timeline.dropped, 0);
        // 9 valid traces × 4 spans (parse/validate/merge/categorize; the
        // streaming path does not fetch) + 1 parse span for the corrupt one.
        assert_eq!(timeline.recorded, 9 * 4 + 1);
        assert!(timeline
            .events
            .iter()
            .any(|e| e.trace == 3 && e.outcome == mosaic_obs::SpanOutcome::FormatCorrupt));
    }

    #[test]
    fn metered_streaming_matches_plain_and_keeps_windowed_history() {
        let inputs: Vec<TraceInput> = (0..25)
            .map(|i| {
                if i % 6 == 0 {
                    TraceInput::bytes(vec![0u8; 8]) // corrupt
                } else {
                    TraceInput::bytes(mdf::to_bytes(&log_for(
                        i % 3,
                        &format!("/bin/app{}", i % 3),
                        (i as i64 + 1) << 20,
                    )))
                }
            })
            .collect();

        let mut plain = IncrementalAnalyzer::new(CategorizerConfig::default());
        let mut metered = IncrementalAnalyzer::with_metrics(CategorizerConfig::default(), 5, 3);
        assert!(plain.window().is_none());
        assert!(plain.metrics_snapshot().is_none());
        for input in inputs {
            plain.ingest(input.clone());
            metered.ingest(input);
        }

        // Analytical results are byte-for-byte unaffected by metrics.
        assert_eq!(plain.funnel(), metered.funnel());
        assert_eq!(plain.all_runs_counts(), metered.all_runs_counts());
        assert_eq!(plain.single_run_counts(), metered.single_run_counts());

        // 25 traces / every-5 = 5 boundaries, capacity 3 → 3 kept, 2 dropped.
        let window = metered.window().expect("metrics enabled");
        assert_eq!(window.len(), 3);
        assert_eq!(window.dropped(), 2);
        let ats: Vec<u64> = window.entries().map(|e| e.at_trace).collect();
        assert_eq!(ats, [15, 20, 25]);
        // Later snapshots never report fewer ingested traces than earlier
        // ones, and the final snapshot reflects the full run.
        let latest = window.latest().expect("non-empty");
        let dedup = latest
            .snapshot
            .families
            .iter()
            .find(|f| f.name == "mosaic.dedup.apps")
            .expect("dedup gauge");
        assert_eq!(dedup.samples[0].value, 3.0);
        let evictions = latest
            .snapshot
            .families
            .iter()
            .find(|f| f.name == "mosaic.pipeline.evictions")
            .expect("eviction counters");
        assert_eq!(evictions.samples[0].value, 5.0, "5 corrupt traces by trace 25");
        // The live export agrees with the final window entry's shape.
        let live = metered.metrics_snapshot().expect("metrics enabled");
        assert_eq!(
            live.families.len(),
            latest.snapshot.families.len(),
            "same families live and windowed"
        );
    }

    #[test]
    fn representative_swaps_when_heavier_run_arrives() {
        let mut inc = IncrementalAnalyzer::new(CategorizerConfig::default());
        inc.ingest(TraceInput::log(log_for(1, "/bin/a", 1 << 20))); // light, quiet
        let single_before = inc.single_run_counts();
        // A heavy run of the same app: representative becomes significant.
        inc.ingest(TraceInput::log(log_for(1, "/bin/a", 900 << 20)));
        let single_after = inc.single_run_counts();
        assert_eq!(inc.funnel().unique_apps, 1);
        assert_ne!(single_before, single_after);
        use mosaic_core::category::{OpKindTag, TemporalityLabel};
        let on_start =
            Category::Temporality { kind: OpKindTag::Read, label: TemporalityLabel::OnStart };
        assert_eq!(single_after.count(on_start), 1);
    }

    #[test]
    fn stability_tracks_modal_set() {
        let mut inc = IncrementalAnalyzer::new(CategorizerConfig::default());
        for _ in 0..7 {
            inc.ingest(TraceInput::log(log_for(1, "/bin/a", 900 << 20)));
        }
        for _ in 0..3 {
            inc.ingest(TraceInput::log(log_for(1, "/bin/a", 1 << 20)));
        }
        let state = inc.apps().values().next().unwrap();
        assert_eq!(state.runs, 10);
        assert!((state.stability() - 0.7).abs() < 1e-12);
    }

    #[test]
    fn watch_folder_flow() {
        // Simulate a directory growing over time via DirSource re-scans.
        let dir = std::env::temp_dir().join(format!("mosaic_inc_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut inc = IncrementalAnalyzer::new(CategorizerConfig::default());
        let mut seen = std::collections::BTreeSet::new();

        for wave in 0..3 {
            for j in 0..4 {
                let log =
                    log_for(wave, &format!("/bin/w{wave}"), ((wave * 4 + j + 1) as i64) << 20);
                let path = dir.join(format!("t{wave}_{j}.mdf"));
                std::fs::write(&path, mdf::to_bytes(&log)).unwrap();
            }
            // Poll: ingest only unseen files.
            let source = crate::source::DirSource::scan(&dir).unwrap();
            for (i, path) in source.paths().iter().enumerate() {
                if seen.insert(path.clone()) {
                    inc.ingest_fetched(source.fetch(i));
                }
            }
        }
        assert_eq!(inc.funnel().total, 12);
        assert_eq!(inc.funnel().valid, 12);
        assert_eq!(inc.funnel().unique_apps, 3);
        std::fs::remove_dir_all(&dir).ok();
    }
}
