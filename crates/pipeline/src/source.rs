//! Trace sources: where the pipeline pulls its inputs from.

use bytes::Bytes;
use mosaic_darshan::TraceLog;
use std::sync::Arc;

/// One raw input: either undecoded MDF bytes (as read from disk) or an
/// already-decoded log (as handed over by a generator or simulator).
///
/// Both payloads are reference-counted ([`Bytes`] / [`Arc`]), so cloning a
/// `TraceInput` is O(1) — sources can hand the same trace to many fetches
/// without duplicating megabytes of records.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceInput {
    /// Raw MDF bytes; the pipeline parses (and may reject) them.
    Bytes(Bytes),
    /// A decoded log; the pipeline still validates it.
    Log(Arc<TraceLog>),
}

impl TraceInput {
    /// Wrap raw MDF bytes.
    pub fn bytes(bytes: impl Into<Bytes>) -> TraceInput {
        TraceInput::Bytes(bytes.into())
    }

    /// Wrap a decoded log.
    pub fn log(log: impl Into<Arc<TraceLog>>) -> TraceInput {
        TraceInput::Log(log.into())
    }

    /// On-the-wire size of the input: byte length for raw inputs, `0` for
    /// already-decoded logs (they never crossed the parse stage).
    pub fn wire_len(&self) -> usize {
        match self {
            TraceInput::Bytes(b) => b.len(),
            TraceInput::Log(_) => 0,
        }
    }
}

impl From<Vec<u8>> for TraceInput {
    fn from(bytes: Vec<u8>) -> TraceInput {
        TraceInput::Bytes(bytes.into())
    }
}

impl From<TraceLog> for TraceInput {
    fn from(log: TraceLog) -> TraceInput {
        TraceInput::Log(Arc::new(log))
    }
}

/// A random-access collection of trace inputs. `fetch` must be thread-safe
/// and pure — the pipeline calls it from worker threads in arbitrary order.
pub trait TraceSource: Sync {
    /// Number of traces available.
    fn len(&self) -> usize;

    /// `true` when the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch trace `i`. An `Err` means the input could not be *read* (I/O
    /// failure); the pipeline accounts it separately from corrupt bytes.
    fn fetch(&self, i: usize) -> std::io::Result<TraceInput>;
}

/// Adapts any `Fn(usize) -> TraceInput` closure (plus a length) into a
/// source — the glue between the pipeline and e.g.
/// `mosaic_synth::Dataset::generate`. In-memory generation cannot fail, so
/// `fetch` always succeeds.
pub struct ClosureSource<F: Fn(usize) -> TraceInput + Sync> {
    len: usize,
    fetch: F,
}

impl<F: Fn(usize) -> TraceInput + Sync> ClosureSource<F> {
    /// Wrap a closure.
    pub fn new(len: usize, fetch: F) -> Self {
        ClosureSource { len, fetch }
    }
}

impl<F: Fn(usize) -> TraceInput + Sync> TraceSource for ClosureSource<F> {
    fn len(&self) -> usize {
        self.len
    }

    fn fetch(&self, i: usize) -> std::io::Result<TraceInput> {
        debug_assert!(i < self.len);
        Ok((self.fetch)(i))
    }
}

/// An in-memory source (tests, small experiments).
pub struct VecSource {
    items: Vec<TraceInput>,
}

impl VecSource {
    /// Wrap a vector of inputs.
    pub fn new(items: Vec<TraceInput>) -> Self {
        VecSource { items }
    }
}

impl TraceSource for VecSource {
    fn len(&self) -> usize {
        self.items.len()
    }

    fn fetch(&self, i: usize) -> std::io::Result<TraceInput> {
        match self.items.get(i) {
            Some(item) => Ok(item.clone()),
            None => Err(out_of_range(i, self.items.len())),
        }
    }
}

/// An index past the end of a source is a driver bug, but it surfaces as a
/// typed I/O error rather than a panic so one bad stage cannot abort a
/// 462k-trace run.
fn out_of_range(i: usize, len: usize) -> std::io::Error {
    std::io::Error::new(
        std::io::ErrorKind::NotFound,
        format!("trace index {i} out of range for source of length {len}"),
    )
}

/// A directory of `.mdf` trace files — the production ingestion path.
///
/// Files are enumerated once at construction (sorted, for determinism) and
/// read lazily per fetch, so a directory of hundreds of thousands of traces
/// costs memory proportional to the path list only.
pub struct DirSource {
    paths: Vec<std::path::PathBuf>,
}

impl DirSource {
    /// Scan `dir` for `*.mdf` files.
    pub fn scan(dir: &std::path::Path) -> std::io::Result<DirSource> {
        let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().map(|e| e == "mdf").unwrap_or(false))
            .collect();
        paths.sort();
        Ok(DirSource { paths })
    }

    /// The enumerated file paths.
    pub fn paths(&self) -> &[std::path::PathBuf] {
        &self.paths
    }
}

impl TraceSource for DirSource {
    fn len(&self) -> usize {
        self.paths.len()
    }

    fn fetch(&self, i: usize) -> std::io::Result<TraceInput> {
        let path = self.paths.get(i).ok_or_else(|| out_of_range(i, self.paths.len()))?;
        // A file that cannot be read is an I/O failure, not format
        // corruption: propagate the error so the funnel can say so.
        Ok(TraceInput::bytes(std::fs::read(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_darshan::job::JobHeader;
    use mosaic_darshan::log::TraceLogBuilder;

    fn tiny_log() -> TraceLog {
        TraceLogBuilder::new(JobHeader::new(1, 1, 1, 0, 10)).finish()
    }

    #[test]
    fn closure_source_delegates() {
        let s = ClosureSource::new(3, |i| TraceInput::bytes(vec![i as u8]));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.fetch(2).unwrap(), TraceInput::bytes(vec![2u8]));
    }

    #[test]
    fn vec_source_round_trips() {
        let s = VecSource::new(vec![TraceInput::log(tiny_log())]);
        assert_eq!(s.len(), 1);
        match s.fetch(0).unwrap() {
            TraceInput::Log(l) => assert_eq!(l.header().job_id, 1),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn clones_share_the_payload() {
        let input = TraceInput::log(tiny_log());
        let copy = input.clone();
        match (&input, &copy) {
            (TraceInput::Log(a), TraceInput::Log(b)) => assert!(Arc::ptr_eq(a, b)),
            _ => panic!("wrong variants"),
        }
        let input = TraceInput::bytes(vec![1u8, 2, 3]);
        assert_eq!(input.wire_len(), 3);
        assert_eq!(TraceInput::log(tiny_log()).wire_len(), 0);
    }

    #[test]
    fn empty_source() {
        let s = VecSource::new(vec![]);
        assert!(s.is_empty());
    }

    #[test]
    fn dir_source_scans_only_mdf_files_in_order() {
        let dir = std::env::temp_dir().join(format!("mosaic_dirsource_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log = tiny_log();
        let bytes = mosaic_darshan::mdf::to_bytes(&log);
        std::fs::write(dir.join("b.mdf"), &bytes).unwrap();
        std::fs::write(dir.join("a.mdf"), &bytes).unwrap();
        std::fs::write(dir.join("ignore.txt"), b"nope").unwrap();

        let source = DirSource::scan(&dir).unwrap();
        assert_eq!(source.len(), 2);
        assert!(source.paths()[0].ends_with("a.mdf"));
        match source.fetch(0).unwrap() {
            TraceInput::Bytes(b) => {
                assert_eq!(mosaic_darshan::mdf::from_bytes(&b).unwrap(), log)
            }
            _ => panic!("expected bytes"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dir_source_propagates_read_errors() {
        let dir = std::env::temp_dir().join(format!("mosaic_dirsource_io_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("gone.mdf"), b"soon deleted").unwrap();
        let source = DirSource::scan(&dir).unwrap();
        std::fs::remove_file(dir.join("gone.mdf")).unwrap();
        assert!(source.fetch(0).is_err(), "a vanished file must surface as Err, not empty bytes");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dir_source_on_missing_dir_errors() {
        assert!(DirSource::scan(std::path::Path::new("/definitely/not/here")).is_err());
    }
}
