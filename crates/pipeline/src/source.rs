//! Trace sources: where the pipeline pulls its inputs from.

use mosaic_darshan::TraceLog;

/// One raw input: either undecoded MDF bytes (as read from disk) or an
/// already-decoded log (as handed over by a generator or simulator).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceInput {
    /// Raw MDF bytes; the pipeline parses (and may reject) them.
    Bytes(Vec<u8>),
    /// A decoded log; the pipeline still validates it.
    Log(TraceLog),
}

/// A random-access collection of trace inputs. `fetch` must be thread-safe
/// and pure — the pipeline calls it from worker threads in arbitrary order.
pub trait TraceSource: Sync {
    /// Number of traces available.
    fn len(&self) -> usize;

    /// `true` when the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch trace `i`.
    fn fetch(&self, i: usize) -> TraceInput;
}

/// Adapts any `Fn(usize) -> TraceInput` closure (plus a length) into a
/// source — the glue between the pipeline and e.g.
/// `mosaic_synth::Dataset::generate`.
pub struct ClosureSource<F: Fn(usize) -> TraceInput + Sync> {
    len: usize,
    fetch: F,
}

impl<F: Fn(usize) -> TraceInput + Sync> ClosureSource<F> {
    /// Wrap a closure.
    pub fn new(len: usize, fetch: F) -> Self {
        ClosureSource { len, fetch }
    }
}

impl<F: Fn(usize) -> TraceInput + Sync> TraceSource for ClosureSource<F> {
    fn len(&self) -> usize {
        self.len
    }

    fn fetch(&self, i: usize) -> TraceInput {
        debug_assert!(i < self.len);
        (self.fetch)(i)
    }
}

/// An in-memory source (tests, small experiments).
pub struct VecSource {
    items: Vec<TraceInput>,
}

impl VecSource {
    /// Wrap a vector of inputs.
    pub fn new(items: Vec<TraceInput>) -> Self {
        VecSource { items }
    }
}

impl TraceSource for VecSource {
    fn len(&self) -> usize {
        self.items.len()
    }

    fn fetch(&self, i: usize) -> TraceInput {
        self.items[i].clone()
    }
}

/// A directory of `.mdf` trace files — the production ingestion path.
///
/// Files are enumerated once at construction (sorted, for determinism) and
/// read lazily per fetch, so a directory of hundreds of thousands of traces
/// costs memory proportional to the path list only.
pub struct DirSource {
    paths: Vec<std::path::PathBuf>,
}

impl DirSource {
    /// Scan `dir` for `*.mdf` files.
    pub fn scan(dir: &std::path::Path) -> std::io::Result<DirSource> {
        let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| p.extension().map(|e| e == "mdf").unwrap_or(false))
            .collect();
        paths.sort();
        Ok(DirSource { paths })
    }

    /// The enumerated file paths.
    pub fn paths(&self) -> &[std::path::PathBuf] {
        &self.paths
    }
}

impl TraceSource for DirSource {
    fn len(&self) -> usize {
        self.paths.len()
    }

    fn fetch(&self, i: usize) -> TraceInput {
        // An unreadable file is indistinguishable from a corrupt one for
        // the funnel's purposes: deliver bytes that will not parse.
        TraceInput::Bytes(std::fs::read(&self.paths[i]).unwrap_or_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_darshan::job::JobHeader;
    use mosaic_darshan::log::TraceLogBuilder;

    fn tiny_log() -> TraceLog {
        TraceLogBuilder::new(JobHeader::new(1, 1, 1, 0, 10)).finish()
    }

    #[test]
    fn closure_source_delegates() {
        let s = ClosureSource::new(3, |i| TraceInput::Bytes(vec![i as u8]));
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert_eq!(s.fetch(2), TraceInput::Bytes(vec![2]));
    }

    #[test]
    fn vec_source_round_trips() {
        let s = VecSource::new(vec![TraceInput::Log(tiny_log())]);
        assert_eq!(s.len(), 1);
        match s.fetch(0) {
            TraceInput::Log(l) => assert_eq!(l.header().job_id, 1),
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    fn empty_source() {
        let s = VecSource::new(vec![]);
        assert!(s.is_empty());
    }

    #[test]
    fn dir_source_scans_only_mdf_files_in_order() {
        let dir = std::env::temp_dir().join(format!("mosaic_dirsource_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let log = tiny_log();
        let bytes = mosaic_darshan::mdf::to_bytes(&log);
        std::fs::write(dir.join("b.mdf"), &bytes).unwrap();
        std::fs::write(dir.join("a.mdf"), &bytes).unwrap();
        std::fs::write(dir.join("ignore.txt"), b"nope").unwrap();

        let source = DirSource::scan(&dir).unwrap();
        assert_eq!(source.len(), 2);
        assert!(source.paths()[0].ends_with("a.mdf"));
        match source.fetch(0) {
            TraceInput::Bytes(b) => {
                assert_eq!(mosaic_darshan::mdf::from_bytes(&b).unwrap(), log)
            }
            _ => panic!("expected bytes"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn dir_source_on_missing_dir_errors() {
        assert!(DirSource::scan(std::path::Path::new("/definitely/not/here")).is_err());
    }
}
