//! # mosaic-pipeline
//!
//! The parallel trace-processing pipeline around [`mosaic_core`] — the role
//! Dispy played for the paper's Python implementation, rebuilt on Rayon's
//! data-parallel iterators.
//!
//! The pipeline implements the full workflow of Fig 1 at dataset scale:
//!
//! 1. **ingest** — each trace is fetched from a [`source::TraceSource`]
//!    (raw MDF bytes or an already-decoded log), parsed, and validated;
//!    corrupted traces are evicted and counted (Fig 3's funnel);
//! 2. **categorize** — every valid trace runs through the
//!    [`mosaic_core::Categorizer`] in parallel;
//! 3. **deduplicate** — traces group by `(uid, application)`; the heaviest
//!    (most I/O-intensive) trace of each group forms the *single-run* set
//!    (§III-B1), while the full set forms the *all-runs* view;
//! 4. **aggregate** — category distributions for both views, the Jaccard
//!    co-occurrence matrix, and per-application stability statistics.
//!
//! Every eviction carries a typed [`mosaic_darshan::EvictReason`] in
//! [`FunnelStats::by_reason`], and every run produces a
//! [`mosaic_obs::MetricsReport`] with per-stage timings and throughput.
//!
//! ```
//! use mosaic_core::CategorizerConfig;
//! use mosaic_pipeline::executor::{process, PipelineConfig};
//! use mosaic_pipeline::source::{ClosureSource, TraceInput};
//! use mosaic_synth::{Dataset, DatasetConfig, Payload};
//!
//! let ds = Dataset::new(DatasetConfig { n_traces: 200, seed: 1, ..Default::default() });
//! let source = ClosureSource::new(ds.len(), |i| match ds.generate(i).payload {
//!     Payload::Log(log) => TraceInput::log(log),
//!     Payload::Bytes(bytes) => TraceInput::bytes(bytes),
//! });
//! let result = process(&source, &PipelineConfig::default());
//! assert_eq!(result.funnel.total, 200);
//! assert!(result.funnel.evicted() > 0);
//! assert_eq!(result.funnel.by_reason.values().sum::<usize>(), result.funnel.evicted());
//! assert!(result.representatives.len() < result.outcomes.len());
//! assert!(result.metrics.traces_per_second > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dedup;
pub mod executor;
pub mod funnel;
pub mod incremental;
pub mod interference;
pub mod report_md;
pub mod snapshot;
pub mod source;
pub mod stability;

pub use executor::{process, ParseMode, PipelineConfig, PipelineResult, RunOutcome};
pub use funnel::FunnelStats;
pub use incremental::IncrementalAnalyzer;
pub use snapshot::{RepSnapshot, ResultSnapshot};
pub use source::{ClosureSource, DirSource, TraceInput, TraceSource, VecSource};
