//! Canonical, comparable snapshots of a pipeline run.
//!
//! The verification harness needs to ask "did these two runs produce the
//! same answer?" across executors (batch vs incremental), thread counts and
//! serialization roundtrips — and to pin answers down in committed golden
//! files. [`ResultSnapshot`] is the comparison currency: a deterministic
//! projection of a [`PipelineResult`] that keeps everything categorization
//! promises (funnel accounting, category distributions, representative
//! choices) and drops everything environmental (stage timings, throughput).
//!
//! Determinism contract: every collection inside is ordered (`BTreeMap`
//! under [`CategoryCounts`], representatives sorted by app key), so equal
//! results serialize to byte-identical JSON and a stable [`digest`].
//! The structured span timeline (`PipelineResult::timeline`) is
//! environmental by nature — wall-clock offsets, worker lanes, ring
//! truncation — and is therefore excluded by construction: [`of`] never
//! reads it, so a traced and an untraced run of the same inputs snapshot
//! byte-identically.
//!
//! [`digest`]: ResultSnapshot::digest
//! [`of`]: ResultSnapshot::of

use crate::executor::PipelineResult;
use crate::funnel::FunnelStats;
use mosaic_core::report::CategoryCounts;
use mosaic_darshan::synthutil::fnv1a64;
use serde::{Deserialize, Serialize};

/// One single-run representative, reduced to its stable identity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RepSnapshot {
    /// Owning user id (first half of the dedup key).
    pub uid: u32,
    /// Application name (second half of the dedup key).
    pub app: String,
    /// I/O weight that won the dedup contest.
    pub weight: i64,
    /// Canonical category names, sorted.
    pub categories: Vec<String>,
}

/// The deterministic projection of a [`PipelineResult`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultSnapshot {
    /// Funnel accounting, including the typed eviction breakdown.
    pub funnel: FunnelStats,
    /// Category distribution over all valid runs.
    pub all_runs: CategoryCounts,
    /// Category distribution over the deduplicated single-run set.
    pub single_run: CategoryCounts,
    /// The single-run representatives, sorted by `(uid, app)`.
    pub representatives: Vec<RepSnapshot>,
}

impl ResultSnapshot {
    /// Project a pipeline result down to its comparable core.
    pub fn of(result: &PipelineResult) -> ResultSnapshot {
        let mut representatives: Vec<RepSnapshot> = result
            .representatives()
            .map(|o| RepSnapshot {
                uid: o.app_key.0,
                app: o.app_key.1.clone(),
                weight: o.weight,
                categories: o.report.names(),
            })
            .collect();
        representatives.sort_by(|a, b| (a.uid, &a.app).cmp(&(b.uid, &b.app)));
        ResultSnapshot {
            funnel: result.funnel.clone(),
            all_runs: result.all_runs_counts(),
            single_run: result.single_run_counts(),
            representatives,
        }
    }

    /// Canonical JSON: pretty-printed, with every map ordered. Equal
    /// snapshots always render to byte-identical strings.
    pub fn to_canonical_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("snapshot serialization cannot fail")
    }

    /// Parse a snapshot back from its canonical JSON.
    pub fn from_json(json: &str) -> Result<ResultSnapshot, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Stable 64-bit fingerprint of the canonical JSON, for terse diffs.
    pub fn digest(&self) -> u64 {
        fnv1a64(self.to_canonical_json().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::{process, PipelineConfig};
    use crate::source::{TraceInput, VecSource};
    use mosaic_darshan::counter::PosixCounter as C;
    use mosaic_darshan::counter::PosixFCounter as F;
    use mosaic_darshan::job::JobHeader;
    use mosaic_darshan::log::TraceLogBuilder;
    use mosaic_darshan::TraceLog;

    fn log_for(uid: u32, exe: &str, bytes: i64) -> TraceLog {
        let mut b = TraceLogBuilder::new(JobHeader::new(1, uid, 4, 0, 1000).with_exe(exe));
        let r = b.begin_record("/in", -1);
        b.record_mut(r)
            .set(C::Reads, 4)
            .set(C::BytesRead, bytes)
            .set(C::Opens, 4)
            .setf(F::OpenStartTimestamp, 1.0)
            .setf(F::ReadStartTimestamp, 1.0)
            .setf(F::ReadEndTimestamp, 50.0);
        b.finish()
    }

    fn run() -> PipelineResult {
        let inputs = vec![
            TraceInput::log(log_for(2, "/bin/b", 500 << 20)),
            TraceInput::log(log_for(1, "/bin/a x", 600 << 20)),
            TraceInput::log(log_for(1, "/bin/a y", 900 << 20)),
            TraceInput::bytes(vec![7u8; 40]),
        ];
        process(&VecSource::new(inputs), &PipelineConfig::default())
    }

    #[test]
    fn snapshot_is_sorted_and_roundtrips() {
        let snap = ResultSnapshot::of(&run());
        assert_eq!(snap.funnel.total, 4);
        assert_eq!(snap.representatives.len(), 2);
        assert!(snap
            .representatives
            .windows(2)
            .all(|w| (w[0].uid, &w[0].app) <= (w[1].uid, &w[1].app)));
        // uid 1's winner is the heavier of the two "/bin/a" runs.
        assert_eq!(snap.representatives[0].weight, 900 << 20);
        let back = ResultSnapshot::from_json(&snap.to_canonical_json()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn equal_runs_have_equal_digests() {
        let a = ResultSnapshot::of(&run());
        let b = ResultSnapshot::of(&run());
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.to_canonical_json(), b.to_canonical_json());
    }

    #[test]
    fn snapshot_ignores_the_timeline() {
        let inputs = vec![
            TraceInput::log(log_for(2, "/bin/b", 500 << 20)),
            TraceInput::log(log_for(1, "/bin/a x", 600 << 20)),
            TraceInput::bytes(vec![7u8; 40]),
        ];
        let plain = process(&VecSource::new(inputs.clone()), &PipelineConfig::default());
        let traced_cfg = PipelineConfig { trace_capacity: Some(128), ..Default::default() };
        let traced = process(&VecSource::new(inputs), &traced_cfg);
        assert!(plain.timeline.is_none());
        assert!(traced.timeline.is_some());
        // Byte-identical canonical JSON: the determinism oracles are blind
        // to whether tracing was on.
        assert_eq!(
            ResultSnapshot::of(&plain).to_canonical_json(),
            ResultSnapshot::of(&traced).to_canonical_json()
        );
    }

    #[test]
    fn digest_moves_when_the_answer_moves() {
        let a = ResultSnapshot::of(&run());
        let inputs = vec![TraceInput::log(log_for(9, "/bin/z", 100))];
        let b = ResultSnapshot::of(&process(&VecSource::new(inputs), &PipelineConfig::default()));
        assert_ne!(a.digest(), b.digest());
    }
}
