//! I/O interference analysis — the paper's long-term future work.
//!
//! §V: *"we plan to analyze the dataset in greater depth to detect I/O
//! performance losses that could be attributed to concurrency. This way, we
//! would like to be able to identify whether some categories are more
//! conflicting than others, [...] to improve concurrency-aware job
//! scheduling."*
//!
//! The analysis here: every categorized job contributes *demand windows* —
//! wallclock intervals with an estimated storage-bandwidth demand, derived
//! from its temporal chunk volumes. The machine's year is binned; in every
//! bin where the aggregate demand exceeds the file system's bandwidth, the
//! excess is *contention*, attributed to the categories present in
//! proportion to their demand. The output ranks categories and category
//! pairs by the contention they participate in, and a category-aware
//! staggering what-if quantifies how much contention a scheduler could
//! remove — the decision signal MOSAIC was built to feed.

use crate::executor::RunOutcome;
use mosaic_core::category::{Category, OpKindTag, TemporalityLabel};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One job's bandwidth demand over a wallclock interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DemandWindow {
    /// Absolute start, Unix seconds.
    pub start: f64,
    /// Absolute end, Unix seconds.
    pub end: f64,
    /// Estimated demand, bytes per second.
    pub demand: f64,
    /// The temporality category the window belongs to.
    pub category: Category,
}

/// Extract demand windows from one outcome: each temporal chunk with
/// significant volume becomes a window with `chunk bytes / chunk seconds`
/// demand, labeled by the direction's temporality category.
pub fn demand_windows(outcome: &RunOutcome) -> Vec<DemandWindow> {
    let mut out = Vec::new();
    let runtime = (outcome.end_time - outcome.start_time) as f64;
    if runtime <= 0.0 {
        return out;
    }
    for (kind, direction) in
        [(OpKindTag::Read, &outcome.report.read), (OpKindTag::Write, &outcome.report.write)]
    {
        let temporality = &direction.temporality;
        if temporality.label == TemporalityLabel::Insignificant {
            continue;
        }
        let category = Category::Temporality { kind, label: temporality.label };
        let n = temporality.chunk_bytes.len().max(1);
        let chunk_seconds = runtime / n as f64;
        for (i, &bytes) in temporality.chunk_bytes.iter().enumerate() {
            if bytes <= 0.0 {
                continue;
            }
            let start = outcome.start_time as f64 + chunk_seconds * i as f64;
            out.push(DemandWindow {
                start,
                end: start + chunk_seconds,
                demand: bytes / chunk_seconds,
                category,
            });
        }
    }
    out
}

/// Interference analysis result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterferenceReport {
    /// Analysis bin width, seconds.
    pub bin_seconds: f64,
    /// Bins where aggregate demand exceeded the PFS bandwidth.
    pub contended_bins: usize,
    /// Total bins with any demand.
    pub active_bins: usize,
    /// Total contended byte-seconds (demand above capacity, integrated).
    pub contended_byte_seconds: f64,
    /// Peak aggregate demand observed in any bin, bytes/s.
    pub peak_demand: f64,
    /// Mean aggregate demand over active bins, bytes/s.
    pub mean_demand: f64,
    /// Contention participation per category (byte-seconds of its demand
    /// inside contended bins), descending.
    pub category_scores: Vec<(Category, f64)>,
    /// Contention co-participation per category pair, descending.
    pub pair_scores: Vec<(Category, Category, f64)>,
}

/// Analyze contention over a set of outcomes, against a PFS of
/// `pfs_bandwidth` bytes/s, using `bin_seconds` wallclock bins.
pub fn analyze(
    outcomes: &[RunOutcome],
    pfs_bandwidth: f64,
    bin_seconds: f64,
) -> InterferenceReport {
    assert!(pfs_bandwidth > 0.0 && bin_seconds > 0.0);
    let windows: Vec<DemandWindow> = outcomes.iter().flat_map(demand_windows).collect();
    analyze_windows(&windows, pfs_bandwidth, bin_seconds)
}

/// Analyze pre-extracted windows (lets what-if schedulers mutate them).
pub fn analyze_windows(
    windows: &[DemandWindow],
    pfs_bandwidth: f64,
    bin_seconds: f64,
) -> InterferenceReport {
    // Bin the demand: bin index → per-category demand.
    let mut bins: BTreeMap<i64, BTreeMap<Category, f64>> = BTreeMap::new();
    for w in windows {
        if w.end <= w.start || w.demand <= 0.0 {
            continue;
        }
        // lint: allow(cast, "f64-to-i64 `as` saturates; absurd window bounds clamp to the extremes")
        let first = (w.start / bin_seconds).floor() as i64;
        // lint: allow(cast, "f64-to-i64 `as` saturates; absurd window bounds clamp to the extremes")
        let last = ((w.end - 1e-9) / bin_seconds).floor() as i64;
        for b in first..=last {
            let lo = w.start.max(b as f64 * bin_seconds);
            let hi = w.end.min((b + 1) as f64 * bin_seconds);
            if hi <= lo {
                continue;
            }
            // Demand contribution averaged over the bin.
            let contribution = w.demand * (hi - lo) / bin_seconds;
            *bins.entry(b).or_default().entry(w.category).or_insert(0.0) += contribution;
        }
    }

    let mut contended_bins = 0usize;
    let mut contended_byte_seconds = 0.0;
    let mut peak_demand = 0.0f64;
    let mut demand_sum = 0.0f64;
    let mut category_scores: BTreeMap<Category, f64> = BTreeMap::new();
    let mut pair_scores: BTreeMap<(Category, Category), f64> = BTreeMap::new();
    for demands in bins.values() {
        let total: f64 = demands.values().sum();
        peak_demand = peak_demand.max(total);
        demand_sum += total;
        if total <= pfs_bandwidth {
            continue;
        }
        contended_bins += 1;
        let excess = (total - pfs_bandwidth) * bin_seconds;
        contended_byte_seconds += excess;
        // Attribute the excess proportionally to each category's demand.
        for (&cat, &d) in demands {
            *category_scores.entry(cat).or_insert(0.0) += excess * d / total;
        }
        // Pairs: co-participation weighted by the smaller share (both must
        // be present for the pair to conflict).
        let cats: Vec<(&Category, &f64)> = demands.iter().collect();
        for i in 0..cats.len() {
            for j in (i + 1)..cats.len() {
                let share = cats[i].1.min(*cats[j].1) / total;
                *pair_scores.entry((*cats[i].0, *cats[j].0)).or_insert(0.0) += excess * share;
            }
        }
    }

    let mut category_scores: Vec<(Category, f64)> = category_scores.into_iter().collect();
    category_scores.sort_by(|a, b| b.1.total_cmp(&a.1));
    let mut pair_scores: Vec<(Category, Category, f64)> =
        pair_scores.into_iter().map(|((a, b), v)| (a, b, v)).collect();
    pair_scores.sort_by(|a, b| b.2.total_cmp(&a.2));

    InterferenceReport {
        bin_seconds,
        contended_bins,
        active_bins: bins.len(),
        contended_byte_seconds,
        peak_demand,
        mean_demand: demand_sum / bins.len().max(1) as f64,
        category_scores,
        pair_scores,
    }
}

/// Category-aware admission-control what-if: at most `max_concurrent`
/// windows of the `target` category run at once; later arrivals are delayed
/// until a slot frees (bounded by `max_delay` — windows that cannot fit the
/// budget run as originally scheduled). This is the scheduler policy the
/// paper's introduction sketches ("two jobs categorized as reading large
/// volumes of data at the start of execution could be scheduled so as not
/// to overlap", generalized from 1-at-a-time to K-at-a-time). Returns
/// `(new report, fraction of contention removed)`.
pub fn stagger_what_if(
    outcomes: &[RunOutcome],
    pfs_bandwidth: f64,
    bin_seconds: f64,
    target: Category,
    max_concurrent: usize,
    max_delay: f64,
) -> (InterferenceReport, f64) {
    assert!(max_concurrent >= 1);
    let baseline = analyze(outcomes, pfs_bandwidth, bin_seconds);
    let mut windows: Vec<DemandWindow> = outcomes.iter().flat_map(demand_windows).collect();

    let mut idx: Vec<usize> =
        (0..windows.len()).filter(|&i| windows[i].category == target).collect();
    idx.sort_by(|&a, &b| windows[a].start.total_cmp(&windows[b].start));

    // K admission slots, each holding the end time of its current window.
    let mut slots = vec![f64::NEG_INFINITY; max_concurrent];
    for &i in &idx {
        let w = &mut windows[i];
        // Earliest-freeing slot.
        let (slot, free_at) = slots
            .iter()
            .copied()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("max_concurrent >= 1");
        let delay = (free_at - w.start).max(0.0);
        if delay <= max_delay {
            w.start += delay;
            w.end += delay;
            slots[slot] = w.end;
        }
        // Over-budget windows run as scheduled and do not occupy a slot:
        // the scheduler would have admitted them rather than starve them.
    }

    let staggered = analyze_windows(&windows, pfs_bandwidth, bin_seconds);
    let removed = if baseline.contended_byte_seconds > 0.0 {
        1.0 - staggered.contended_byte_seconds / baseline.contended_byte_seconds
    } else {
        0.0
    };
    (staggered, removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mosaic_core::{Categorizer, CategorizerConfig};
    use mosaic_darshan::ops::{OpKind, Operation, OperationView};

    const GB: f64 = (1u64 << 30) as f64;

    fn outcome(index: usize, start_time: i64, read_gb: u64, early: bool) -> RunOutcome {
        let (s, e) = if early { (1.0, 200.0) } else { (10.0, 990.0) };
        let view = OperationView {
            runtime: 1000.0,
            nprocs: 8,
            reads: vec![Operation {
                kind: OpKind::Read,
                start: s,
                end: e,
                bytes: read_gb << 30,
                ranks: 8,
            }],
            writes: vec![],
            meta: vec![],
        };
        let report = Categorizer::new(CategorizerConfig::default()).categorize(&view);
        RunOutcome {
            index,
            app_key: (1, format!("app{index}")),
            weight: (read_gb << 30) as i64,
            sanitized_records: 0,
            start_time,
            end_time: start_time + 1000,
            report,
        }
    }

    #[test]
    fn windows_follow_chunk_shape() {
        let o = outcome(0, 5000, 100, true); // read on start
        let windows = demand_windows(&o);
        assert!(!windows.is_empty());
        // All demand in the first quarter.
        assert!(windows[0].start >= 5000.0 && windows[0].end <= 5000.0 + 250.0 + 1.0);
        let total: f64 = windows.iter().map(|w| w.demand * (w.end - w.start)).sum();
        assert!((total - 100.0 * GB).abs() < GB * 0.01, "total {total}");
    }

    #[test]
    fn insignificant_jobs_contribute_nothing() {
        let o = outcome(0, 0, 0, true);
        // 0 GB → insignificant → no windows.
        assert!(demand_windows(&o).is_empty());
    }

    #[test]
    fn colocated_jobs_contend_and_staggering_helps() {
        // Ten 100 GB read-on-start jobs all starting at the same instant on
        // a 0.5 GB/s PFS: heavy contention at the shared start.
        let outcomes: Vec<RunOutcome> = (0..10).map(|i| outcome(i, 10_000, 100, true)).collect();
        let report = analyze(&outcomes, 0.5 * GB, 60.0);
        assert!(report.contended_bins > 0);
        assert!(report.contended_byte_seconds > 0.0);
        let read_start =
            Category::Temporality { kind: OpKindTag::Read, label: TemporalityLabel::OnStart };
        assert_eq!(report.category_scores[0].0, read_start);

        let (staggered, removed) =
            stagger_what_if(&outcomes, 0.5 * GB, 60.0, read_start, 1, 7200.0);
        assert!(removed > 0.5, "removed only {removed}");
        assert!(staggered.contended_byte_seconds < report.contended_byte_seconds);
    }

    #[test]
    fn disjoint_jobs_do_not_contend() {
        // Jobs a day apart never overlap.
        let outcomes: Vec<RunOutcome> =
            (0..5).map(|i| outcome(i, i as i64 * 86_400, 100, true)).collect();
        let report = analyze(&outcomes, 0.5 * GB, 60.0);
        // A single 100 GB job in 250 s is 0.4 GB/s < 0.5 GB/s capacity.
        assert_eq!(report.contended_bins, 0);
        assert_eq!(report.contended_byte_seconds, 0.0);
    }

    #[test]
    fn pair_scores_capture_mixed_conflicts() {
        // Read-on-start jobs sharing the machine with steady readers.
        let mut outcomes: Vec<RunOutcome> = (0..5).map(|i| outcome(i, 0, 100, true)).collect();
        outcomes.extend((5..10).map(|i| outcome(i, 0, 400, false)));
        let report = analyze(&outcomes, 0.5 * GB, 60.0);
        assert!(!report.pair_scores.is_empty());
        let names: Vec<(String, String)> =
            report.pair_scores.iter().map(|(a, b, _)| (a.name(), b.name())).collect();
        assert!(
            names.iter().any(|(a, b)| (a.contains("read") && b.contains("read")) && a != b),
            "{names:?}"
        );
    }

    #[test]
    fn empty_outcomes() {
        let report = analyze(&[], 1.0, 60.0);
        assert_eq!(report.active_bins, 0);
        assert_eq!(report.contended_byte_seconds, 0.0);
        assert!(report.category_scores.is_empty());
    }
}
