//! Structured per-trace span tracing.
//!
//! The aggregate [`Recorder`](crate::Recorder) answers "how slow is the
//! parse stage on average?"; this module answers "*which* trace was slow,
//! in *which* stage, and what did its journey through
//! fetch→parse→validate→merge→categorize look like?". A [`Tracer`] collects
//! `(trace, stage, start_ns, duration_ns, bytes, outcome)` span events into
//! a bounded ring buffer written with a seqlock-style atomic protocol —
//! recording is lock-free, wrapping overwrites the oldest spans, and the
//! exact overwrite count is surfaced as [`TraceTimeline::dropped`] so
//! truncation is never silent.
//!
//! Alongside the ring, a small per-stage reservoir keeps the
//! [`EXEMPLARS_PER_STAGE`] slowest spans (trace name, duration, eviction
//! reason if any). The reservoir is insert-only-on-improvement behind an
//! atomic duration floor, so it survives ring wrap: even when millions of
//! spans have been overwritten, the slowest ones remain inspectable.
//!
//! A [`TraceTimeline`] snapshot serializes two ways:
//!
//! * [`TraceTimeline::to_chrome_json`] — Chrome trace-event JSON, loadable
//!   in Perfetto or `chrome://tracing`: one track per worker thread holding
//!   the stage spans, plus one async span per trace stretching from its
//!   first to its last stage;
//! * [`TraceTimeline::render_slow_md`] — a compact markdown "slowest
//!   traces per stage" table for reports and CI artifacts.
//!
//! The time base is the owning recorder's epoch (nanoseconds since the run
//! started); the tracer itself never reads a clock, so determinism
//! arguments stay confined to the recorder.

use crate::Stage;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Mutex;

/// How many slow-trace exemplars each stage's reservoir retains.
pub const EXEMPLARS_PER_STAGE: usize = 10;

/// How a span ended: the trace advanced, or this stage evicted it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum SpanOutcome {
    /// The stage completed and the trace moved on.
    Ok,
    /// The stage evicted the trace: the input could not be read.
    IoError,
    /// The stage evicted the trace: the bytes did not parse.
    FormatCorrupt,
    /// The stage evicted the trace: validation failed fatally.
    Invalid,
}

impl SpanOutcome {
    /// Stable lowercase name (also the JSON spelling).
    pub fn name(self) -> &'static str {
        match self {
            SpanOutcome::Ok => "ok",
            SpanOutcome::IoError => "io_error",
            SpanOutcome::FormatCorrupt => "format_corrupt",
            SpanOutcome::Invalid => "invalid",
        }
    }

    /// `true` when the stage evicted the trace.
    pub fn is_evicted(self) -> bool {
        self != SpanOutcome::Ok
    }

    fn code(self) -> u64 {
        match self {
            SpanOutcome::Ok => 0,
            SpanOutcome::IoError => 1,
            SpanOutcome::FormatCorrupt => 2,
            SpanOutcome::Invalid => 3,
        }
    }

    fn from_code(code: u64) -> SpanOutcome {
        match code {
            1 => SpanOutcome::IoError,
            2 => SpanOutcome::FormatCorrupt,
            3 => SpanOutcome::Invalid,
            _ => SpanOutcome::Ok,
        }
    }
}

/// One timed stage execution, as recorded from a worker thread. `detail`
/// carries the typed eviction slug for exemplars; it is only read (and only
/// allocated into a `String`) when the span actually enters a reservoir.
#[derive(Debug, Clone, Copy)]
pub struct Span<'a> {
    /// Trace identity — the source index of the trace.
    pub trace: u64,
    /// The pipeline stage this span timed.
    pub stage: Stage,
    /// Start offset in nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Span duration in nanoseconds.
    pub duration_ns: u64,
    /// Bytes moved by the stage (0 when not byte-oriented).
    pub bytes: u64,
    /// Worker lane: 0 for the caller thread, `1 + pool index` for Rayon
    /// workers. Becomes the track (`tid`) in the Chrome trace.
    pub worker: u64,
    /// How the span ended.
    pub outcome: SpanOutcome,
    /// Typed eviction slug (e.g. `validation:non_positive_runtime`) for the
    /// exemplar table; `None` falls back to [`SpanOutcome::name`].
    pub detail: Option<&'a str>,
}

/// Worker field width inside the packed meta word:
/// `stage(8) | outcome(8) | worker(48)`.
const WORKER_BITS: u32 = 48;
const WORKER_MASK: u64 = (1 << WORKER_BITS) - 1;

fn pack_meta(stage: Stage, outcome: SpanOutcome, worker: u64) -> u64 {
    ((stage.index() as u64) << 56) | (outcome.code() << WORKER_BITS) | (worker & WORKER_MASK)
}

fn unpack_meta(meta: u64) -> (usize, SpanOutcome, u64) {
    (
        (meta >> 56) as usize,
        SpanOutcome::from_code((meta >> WORKER_BITS) & 0xFF),
        meta & WORKER_MASK,
    )
}

/// One ring slot. `seq` is a seqlock sequence: even = stable, odd = a
/// writer is mid-flight. Every field is an atomic, so a torn read is
/// detectable (sequence moved) but never undefined behaviour — the crate
/// stays `forbid(unsafe_code)`.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    trace: AtomicU64,
    start_ns: AtomicU64,
    duration_ns: AtomicU64,
    bytes: AtomicU64,
    meta: AtomicU64,
}

impl Slot {
    fn new() -> Slot {
        Slot {
            seq: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            duration_ns: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            meta: AtomicU64::new(0),
        }
    }
}

/// Per-stage slow-span reservoir. `floor` is the smallest duration in a
/// full reservoir; spans at or below it return without taking the lock, so
/// the common case is one relaxed atomic load.
#[derive(Debug)]
struct Reservoir {
    floor: AtomicU64,
    top: Mutex<Vec<Exemplar>>,
}

impl Reservoir {
    fn new() -> Reservoir {
        Reservoir { floor: AtomicU64::new(0), top: Mutex::new(Vec::new()) }
    }

    fn offer(&self, span: &Span<'_>) {
        let full_floor = self.floor.load(Ordering::Relaxed);
        if span.duration_ns <= full_floor && full_floor > 0 {
            return;
        }
        // The reservoir holds only fully-inserted exemplars; a panic
        // elsewhere cannot leave it half-written, so poison recovery is
        // sound (same argument as the executor's pool registry).
        let mut top = self.top.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let pos = top.partition_point(|e| e.duration_ns >= span.duration_ns);
        if pos >= EXEMPLARS_PER_STAGE {
            return;
        }
        top.insert(
            pos,
            Exemplar {
                trace: span.trace,
                duration_ns: span.duration_ns,
                outcome: span.detail.unwrap_or(span.outcome.name()).to_owned(),
            },
        );
        top.truncate(EXEMPLARS_PER_STAGE);
        if top.len() == EXEMPLARS_PER_STAGE {
            if let Some(last) = top.last() {
                self.floor.store(last.duration_ns, Ordering::Relaxed);
            }
        }
    }

    fn snapshot(&self) -> Vec<Exemplar> {
        self.top.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }
}

/// The span sink: a bounded ring of [`Span`] events plus one slow-span
/// reservoir per stage. Shared by reference across worker threads;
/// recording never blocks on another recorder.
#[derive(Debug)]
pub struct Tracer {
    slots: Vec<Slot>,
    head: AtomicU64,
    reservoirs: [Reservoir; Stage::ALL.len()],
}

impl Tracer {
    /// A tracer holding at most `capacity` spans (clamped to at least 1).
    /// Memory cost is ~48 bytes per slot, paid once at construction — the
    /// recording hot path allocates nothing.
    pub fn new(capacity: usize) -> Tracer {
        let capacity = capacity.max(1);
        Tracer {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            head: AtomicU64::new(0),
            reservoirs: std::array::from_fn(|_| Reservoir::new()),
        }
    }

    /// Ring capacity in spans.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total spans offered so far (including any since overwritten).
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Spans overwritten by ring wrap so far — the exact truncation count.
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Record one span. Lock-free: a claim `fetch_add` plus six atomic
    /// stores; the exemplar reservoir is consulted behind an atomic floor
    /// so the common case adds one relaxed load.
    ///
    /// The slot's sequence values are derived from the claimed ticket, not
    /// read-modify-written in place: lap `k` of a slot is written under
    /// `2k+1` (odd, torn) and published as `2k+2` (even, whole). With an
    /// in-place `fetch_add` open, two writers landing on the same slot
    /// could take the sequence through odd→even while payload stores from
    /// both are still interleaving — a reader would accept the mix. With
    /// lap-derived stores the interleaving writers store *different*
    /// values, so the reader's before/after equality check fails and the
    /// slot counts as torn instead.
    pub fn record(&self, span: Span<'_>) {
        // lint: allow(sync, "pure ticket counter: the claimed value only selects a slot index and lap; publication is ordered by the seqlock bracket below, and recorded() tolerates staleness")
        let n = self.head.fetch_add(1, Ordering::Relaxed);
        let cap = self.slots.len() as u64;
        let lap = n / cap;
        let idx = (n % cap) as usize;
        if let Some(slot) = self.slots.get(idx) {
            // Seqlock write bracket (L10-verified): odd store, then a
            // Release fence ordering it before the payload, then the even
            // Release store publishing the payload to Acquire readers.
            slot.seq.store(lap * 2 + 1, Ordering::Relaxed);
            fence(Ordering::Release);
            slot.trace.store(span.trace, Ordering::Relaxed);
            slot.start_ns.store(span.start_ns, Ordering::Relaxed);
            slot.duration_ns.store(span.duration_ns, Ordering::Relaxed);
            slot.bytes.store(span.bytes, Ordering::Relaxed);
            slot.meta.store(pack_meta(span.stage, span.outcome, span.worker), Ordering::Relaxed);
            slot.seq.store(lap * 2 + 2, Ordering::Release);
        }
        if let Some(reservoir) = self.reservoirs.get(span.stage.index()) {
            reservoir.offer(&span);
        }
    }

    /// Snapshot the ring and reservoirs into an immutable, serializable
    /// [`TraceTimeline`]. Slots caught mid-write are counted as `torn` and
    /// skipped rather than surfaced with inconsistent fields.
    pub fn snapshot(&self) -> TraceTimeline {
        let recorded = self.recorded();
        let filled = recorded.min(self.slots.len() as u64) as usize;
        let mut torn = 0u64;
        let mut events = Vec::with_capacity(filled);
        for slot in self.slots.iter().take(filled) {
            let seq_before = slot.seq.load(Ordering::Acquire);
            let trace = slot.trace.load(Ordering::Relaxed);
            let start_ns = slot.start_ns.load(Ordering::Relaxed);
            let duration_ns = slot.duration_ns.load(Ordering::Relaxed);
            let bytes = slot.bytes.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            // Order the Relaxed payload loads before the sequence re-check;
            // without the fence they could be satisfied *after* it and a
            // torn read accepted as whole (L10-verified).
            fence(Ordering::Acquire);
            let seq_after = slot.seq.load(Ordering::Acquire);
            // `seq_before == 0` is a slot no writer has finished claiming
            // (the `head` ticket is taken before the odd store lands), so
            // its payload is still the zeroed default — count it torn
            // rather than emit a ghost all-zero span.
            if seq_before == 0 || seq_before % 2 != 0 || seq_before != seq_after {
                torn += 1;
                continue;
            }
            let (stage_idx, outcome, worker) = unpack_meta(meta);
            let Some(&stage) = Stage::ALL.get(stage_idx) else {
                torn += 1;
                continue;
            };
            events.push(SpanEvent { trace, stage, start_ns, duration_ns, bytes, worker, outcome });
        }
        events.sort_by_key(|e| (e.start_ns, e.trace, e.stage.index()));
        let exemplars = Stage::ALL
            .iter()
            .zip(self.reservoirs.iter())
            .map(|(&stage, reservoir)| StageExemplars { stage, slowest: reservoir.snapshot() })
            .collect();
        TraceTimeline {
            capacity: self.slots.len(),
            recorded,
            // Derived from the same head read as `recorded`, not a second
            // one — concurrent writers advance the head, and a snapshot
            // must be internally consistent.
            dropped: recorded.saturating_sub(self.slots.len() as u64),
            torn,
            events,
            exemplars,
        }
    }
}

/// One span, snapshotted out of the ring.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanEvent {
    /// Trace identity (source index).
    pub trace: u64,
    /// The stage timed by this span.
    pub stage: Stage,
    /// Start offset in nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub duration_ns: u64,
    /// Bytes moved (0 when not byte-oriented).
    pub bytes: u64,
    /// Worker lane the span ran on.
    pub worker: u64,
    /// How the span ended.
    pub outcome: SpanOutcome,
}

/// One slow-trace exemplar, preserved across ring wrap.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Exemplar {
    /// Trace identity (source index).
    pub trace: u64,
    /// Span duration in nanoseconds.
    pub duration_ns: u64,
    /// Outcome label: `ok` or the typed eviction slug.
    pub outcome: String,
}

impl Exemplar {
    /// Display name of the trace, matching `generate`'s file naming.
    pub fn name(&self) -> String {
        format!("trace_{:07}", self.trace)
    }
}

/// The slow-span reservoir of one stage, slowest first.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageExemplars {
    /// The stage the exemplars belong to.
    pub stage: Stage,
    /// Up to [`EXEMPLARS_PER_STAGE`] slowest spans, duration-descending.
    pub slowest: Vec<Exemplar>,
}

/// Immutable snapshot of a [`Tracer`]: the surviving span events, exact
/// accounting of what the ring dropped, and the per-stage slow-trace
/// exemplars. Deliberately *not* part of
/// `mosaic_pipeline::ResultSnapshot` — timelines are environmental, and the
/// determinism oracles must stay blind to them.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceTimeline {
    /// Ring capacity the tracer ran with.
    pub capacity: usize,
    /// Total spans offered over the run.
    pub recorded: u64,
    /// Spans lost to ring wrap — `recorded - capacity`, never hidden.
    pub dropped: u64,
    /// Slots skipped because a writer was mid-flight during the snapshot.
    pub torn: u64,
    /// Surviving spans, ordered by start offset.
    pub events: Vec<SpanEvent>,
    /// Per-stage slowest spans, one entry per [`Stage::ALL`] member.
    pub exemplars: Vec<StageExemplars>,
}

impl TraceTimeline {
    /// Serialize as Chrome trace-event JSON (the "JSON Array Format" with
    /// an object envelope), loadable in Perfetto or `chrome://tracing`.
    ///
    /// Layout: process 1 holds one track (`tid`) per worker thread with the
    /// stage spans as complete (`ph: "X"`) events, plus one nestable async
    /// span (`ph: "b"`/`"e"`, one per trace id) stretching from the trace's
    /// first stage to its last, so per-trace journeys read as single rows.
    pub fn to_chrome_json(&self) -> String {
        let us = |ns: u64| ns as f64 / 1_000.0;
        let mut events = Vec::new();
        let workers: BTreeSet<u64> = self.events.iter().map(|e| e.worker).collect();
        for w in workers {
            let name = if w == 0 { "main".to_owned() } else { format!("worker-{w}") };
            events.push(serde_json::json!({
                "name": "thread_name", "ph": "M", "pid": 1, "tid": w,
                "args": {"name": name},
            }));
        }
        let mut extents: BTreeMap<u64, (u64, u64, SpanOutcome)> = BTreeMap::new();
        for e in &self.events {
            events.push(serde_json::json!({
                "name": e.stage.name(), "cat": "stage", "ph": "X",
                "pid": 1, "tid": e.worker,
                "ts": us(e.start_ns), "dur": us(e.duration_ns.max(1)),
                "args": {
                    "trace": e.trace,
                    "bytes": e.bytes,
                    "outcome": e.outcome.name(),
                },
            }));
            let end = e.start_ns.saturating_add(e.duration_ns);
            let entry = extents.entry(e.trace).or_insert((e.start_ns, end, e.outcome));
            entry.0 = entry.0.min(e.start_ns);
            entry.1 = entry.1.max(end);
            if e.outcome.is_evicted() {
                entry.2 = e.outcome;
            }
        }
        for (trace, (start, end, outcome)) in extents {
            let name = format!("trace_{trace:07}");
            events.push(serde_json::json!({
                "name": name, "cat": "trace", "ph": "b", "id": trace,
                "pid": 1, "ts": us(start),
                "args": {"outcome": outcome.name()},
            }));
            events.push(serde_json::json!({
                "name": name, "cat": "trace", "ph": "e", "id": trace,
                "pid": 1, "ts": us(end),
            }));
        }
        let doc = serde_json::json!({
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {
                "capacity": self.capacity,
                "recorded": self.recorded,
                "dropped": self.dropped,
                "torn": self.torn,
            },
        });
        serde_json::to_string(&doc).unwrap_or_else(|_| "{\"traceEvents\":[]}".to_owned())
    }

    /// Render the per-stage slow-trace exemplars as one compact markdown
    /// table, with an explicit truncation note when the ring wrapped.
    pub fn render_slow_md(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### Slowest traces per stage\n");
        let _ = writeln!(
            out,
            "{} spans recorded, {} kept (ring capacity {}), {} dropped by wrap.\n",
            self.recorded,
            self.events.len(),
            self.capacity,
            self.dropped,
        );
        let _ = writeln!(out, "| stage | rank | trace | duration µs | outcome |");
        let _ = writeln!(out, "|---|---:|---|---:|---|");
        for group in &self.exemplars {
            for (rank, e) in group.slowest.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "| `{}` | {} | `{}` | {:.1} | `{}` |",
                    group.stage,
                    rank + 1,
                    e.name(),
                    e.duration_ns as f64 / 1_000.0,
                    e.outcome,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(trace: u64, stage: Stage, start_ns: u64, duration_ns: u64) -> Span<'static> {
        Span {
            trace,
            stage,
            start_ns,
            duration_ns,
            bytes: 0,
            worker: 0,
            outcome: SpanOutcome::Ok,
            detail: None,
        }
    }

    #[test]
    fn meta_word_round_trips() {
        for stage in Stage::ALL {
            for outcome in [
                SpanOutcome::Ok,
                SpanOutcome::IoError,
                SpanOutcome::FormatCorrupt,
                SpanOutcome::Invalid,
            ] {
                let meta = pack_meta(stage, outcome, 12_345);
                assert_eq!(unpack_meta(meta), (stage.index(), outcome, 12_345));
            }
        }
    }

    #[test]
    fn ring_keeps_the_newest_and_counts_drops_exactly() {
        let tracer = Tracer::new(8);
        for i in 0..100u64 {
            tracer.record(span(i, Stage::Parse, i * 10, 5));
        }
        let timeline = tracer.snapshot();
        assert_eq!(timeline.capacity, 8);
        assert_eq!(timeline.recorded, 100);
        assert_eq!(timeline.dropped, 92);
        assert_eq!(timeline.torn, 0);
        assert_eq!(timeline.events.len(), 8);
        // Only the last 8 spans survive the wrap.
        let survivors: BTreeSet<u64> = timeline.events.iter().map(|e| e.trace).collect();
        assert_eq!(survivors, (92..100).collect());
    }

    #[test]
    fn exemplars_survive_ring_wrap() {
        // A tiny ring, fed 200 spans whose slowest arrive early: the ring
        // forgets them, the reservoir must not.
        let tracer = Tracer::new(4);
        for i in 0..200u64 {
            // Trace i runs for (200 - i) µs: trace 0 is slowest.
            tracer.record(span(i, Stage::Categorize, i, (200 - i) * 1_000));
        }
        let timeline = tracer.snapshot();
        assert_eq!(timeline.dropped, 196);
        let slow = &timeline.exemplars[Stage::Categorize.index()];
        assert_eq!(slow.stage, Stage::Categorize);
        assert_eq!(slow.slowest.len(), EXEMPLARS_PER_STAGE);
        let traces: Vec<u64> = slow.slowest.iter().map(|e| e.trace).collect();
        assert_eq!(traces, (0..EXEMPLARS_PER_STAGE as u64).collect::<Vec<_>>());
        assert!(slow.slowest.windows(2).all(|w| w[0].duration_ns >= w[1].duration_ns));
        assert_eq!(slow.slowest[0].name(), "trace_0000000");
    }

    #[test]
    fn exemplar_keeps_eviction_slug() {
        let tracer = Tracer::new(16);
        tracer.record(Span {
            trace: 7,
            stage: Stage::Validate,
            start_ns: 0,
            duration_ns: 9_000,
            bytes: 0,
            worker: 0,
            outcome: SpanOutcome::Invalid,
            detail: Some("validation:non_positive_runtime"),
        });
        tracer.record(span(8, Stage::Validate, 10, 1_000));
        let timeline = tracer.snapshot();
        let slow = &timeline.exemplars[Stage::Validate.index()].slowest;
        assert_eq!(slow[0].outcome, "validation:non_positive_runtime");
        assert_eq!(slow[1].outcome, "ok");
    }

    #[test]
    fn concurrent_recording_accounts_every_span() {
        let tracer = Tracer::new(64);
        std::thread::scope(|scope| {
            for t in 0..4u64 {
                let tracer = &tracer;
                scope.spawn(move || {
                    for i in 0..250u64 {
                        tracer.record(span(t * 1_000 + i, Stage::Merge, i, i + 1));
                    }
                });
            }
        });
        let timeline = tracer.snapshot();
        assert_eq!(timeline.recorded, 1_000);
        assert_eq!(timeline.dropped, 936);
        assert_eq!(timeline.events.len() as u64 + timeline.torn, 64);
    }

    #[test]
    fn chrome_json_is_valid_and_complete() {
        let tracer = Tracer::new(32);
        tracer.record(span(1, Stage::Fetch, 0, 2_000));
        tracer.record(span(1, Stage::Parse, 2_000, 3_000));
        tracer.record(Span {
            trace: 2,
            stage: Stage::Parse,
            start_ns: 1_000,
            duration_ns: 500,
            bytes: 64,
            worker: 3,
            outcome: SpanOutcome::FormatCorrupt,
            detail: Some("truncated"),
        });
        let json = tracer.snapshot().to_chrome_json();
        let doc: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = doc["traceEvents"].as_array().expect("traceEvents array");
        let phases: Vec<&str> = events.iter().filter_map(|e| e["ph"].as_str()).collect();
        assert!(phases.contains(&"M"), "thread metadata missing: {phases:?}");
        assert_eq!(phases.iter().filter(|p| **p == "X").count(), 3);
        // One async b/e pair per trace.
        assert_eq!(phases.iter().filter(|p| **p == "b").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "e").count(), 2);
        let x_parse = events
            .iter()
            .find(|e| e["ph"] == "X" && e["args"]["trace"] == 2)
            .expect("trace 2 span");
        assert_eq!(x_parse["tid"], 3);
        assert_eq!(x_parse["args"]["outcome"], "format_corrupt");
        assert_eq!(doc["otherData"]["dropped"], 0);
        // The evicted trace's async span reports the eviction.
        let b2 = events
            .iter()
            .find(|e| e["ph"] == "b" && e["id"] == 2)
            .expect("async begin for trace 2");
        assert_eq!(b2["args"]["outcome"], "format_corrupt");
    }

    #[test]
    fn slow_table_renders_all_stages_and_truncation() {
        let tracer = Tracer::new(2);
        for stage in Stage::ALL {
            tracer.record(span(9, stage, 0, 4_000));
        }
        let md = tracer.snapshot().render_slow_md();
        for stage in Stage::ALL {
            assert!(md.contains(&format!("| `{}` |", stage.name())), "missing {stage} in\n{md}");
        }
        assert!(md.contains("trace_0000009"), "{md}");
        assert!(md.contains("3 dropped by wrap"), "{md}");
    }

    #[test]
    fn timeline_serde_round_trips() {
        let tracer = Tracer::new(8);
        tracer.record(span(1, Stage::Fetch, 0, 100));
        let timeline = tracer.snapshot();
        let json = serde_json::to_string(&timeline).expect("serializes");
        let back: TraceTimeline = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, timeline);
    }

    #[test]
    fn outcome_names_and_codes_are_stable() {
        for (outcome, name) in [
            (SpanOutcome::Ok, "ok"),
            (SpanOutcome::IoError, "io_error"),
            (SpanOutcome::FormatCorrupt, "format_corrupt"),
            (SpanOutcome::Invalid, "invalid"),
        ] {
            assert_eq!(outcome.name(), name);
            assert_eq!(SpanOutcome::from_code(outcome.code()), outcome);
            assert_eq!(outcome.is_evicted(), outcome != SpanOutcome::Ok);
        }
    }
}
