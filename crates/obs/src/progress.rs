//! Live run progress: a single, throttled stderr line.
//!
//! [`ProgressLine`] turns the [`Recorder`](crate::Recorder)'s live atomics
//! into a human-readable status line — overall completion, instantaneous
//! throughput, an exponentially-weighted moving average of each stage's
//! mean call duration, and the running eviction count. The caller decides
//! where the line goes (the CLI redraws it with `\r` on stderr); this type
//! only formats and throttles.
//!
//! Ticks are cheap by construction: callers invoke [`ProgressLine::tick`]
//! once per ingested trace, but the line is recomputed at most once per
//! redraw interval and concurrent tickers skip rather than queue behind the
//! state lock, so full-parallelism pipelines see one relaxed `try_lock`
//! per trace in the common case.

use crate::{Recorder, Stage};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// EWMA smoothing factor for the per-stage mean durations: each redraw
/// interval contributes 30% of the displayed value.
const EWMA_ALPHA: f64 = 0.3;

#[derive(Debug)]
struct ProgressState {
    last_redraw: Instant,
    last_done: usize,
    last_calls: [u64; Stage::ALL.len()],
    last_nanos: [u64; Stage::ALL.len()],
    ewma_micros: [f64; Stage::ALL.len()],
}

/// Throttled formatter of the live progress line.
#[derive(Debug)]
pub struct ProgressLine {
    every: Duration,
    state: Mutex<ProgressState>,
    skipped: AtomicU64,
}

impl ProgressLine {
    /// A progress line redrawn at most once per `every`.
    pub fn new(every: Duration) -> ProgressLine {
        // lint: allow(nondeterminism, "redraw throttling only; the rendered line goes to stderr, never into snapshot-bearing output")
        let now = Instant::now();
        ProgressLine {
            every,
            state: Mutex::new(ProgressState {
                last_redraw: now,
                last_done: 0,
                last_calls: [0; Stage::ALL.len()],
                last_nanos: [0; Stage::ALL.len()],
                ewma_micros: [0.0; Stage::ALL.len()],
            }),
            skipped: AtomicU64::new(0),
        }
    }

    /// Ticks skipped because another thread held the state lock. Purely
    /// observational: a high count on a healthy run just means workers
    /// tick faster than frames render, but a count that equals the tick
    /// count would mean the line never updates.
    pub fn skipped(&self) -> u64 {
        self.skipped.load(Ordering::Relaxed)
    }

    /// Offer a progress tick. Returns the freshly-rendered line when the
    /// redraw interval elapsed, `None` when throttled (or when another
    /// thread holds the state — skipping a frame beats blocking a worker).
    pub fn tick(&self, done: usize, total: usize, recorder: &Recorder) -> Option<String> {
        let Ok(mut state) = self.state.try_lock() else {
            self.skipped.fetch_add(1, Ordering::Relaxed);
            return None;
        };
        // lint: allow(nondeterminism, "redraw throttling only; the rendered line goes to stderr, never into snapshot-bearing output")
        let now = Instant::now();
        // lint: allow(nondeterminism, "redraw throttling only; the rendered line goes to stderr, never into snapshot-bearing output")
        let since = now.duration_since(state.last_redraw);
        if since < self.every && done < total {
            return None;
        }
        let dt = since.as_secs_f64().max(1e-9);
        let rate = (done.saturating_sub(state.last_done)) as f64 / dt;
        for (i, &stage) in Stage::ALL.iter().enumerate() {
            let stats = recorder.stage(stage);
            let calls = stats.calls();
            let nanos = stats.nanos();
            let d_calls = calls.saturating_sub(state.last_calls[i]);
            let d_nanos = nanos.saturating_sub(state.last_nanos[i]);
            if d_calls > 0 {
                let mean_us = d_nanos as f64 / d_calls as f64 / 1_000.0;
                state.ewma_micros[i] = if state.ewma_micros[i] == 0.0 {
                    mean_us
                } else {
                    EWMA_ALPHA * mean_us + (1.0 - EWMA_ALPHA) * state.ewma_micros[i]
                };
            }
            state.last_calls[i] = calls;
            state.last_nanos[i] = nanos;
        }
        state.last_redraw = now;
        state.last_done = done;

        let mut line = String::new();
        let _ = write!(line, "{done}/{total} · {rate:.0} traces/s ·");
        for (i, stage) in Stage::ALL.iter().enumerate() {
            let _ = write!(line, " {} {:.1}µs", stage.name(), state.ewma_micros[i]);
        }
        let _ = write!(line, " · {} evicted", recorder.evictions());
        // The completion tick is the line that stays on screen: surface the
        // contention-skip count there so a starved redraw loop is visible
        // without cluttering every intermediate frame.
        if done >= total {
            let _ = write!(line, " · {} frames skipped", self.skipped());
        }
        Some(line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_tick_before_interval_is_throttled() {
        let rec = Recorder::new();
        let line = ProgressLine::new(Duration::from_secs(3600));
        assert_eq!(line.tick(1, 100, &rec), None);
    }

    #[test]
    fn completion_tick_always_renders() {
        let rec = Recorder::new();
        rec.record(Stage::Parse, Duration::from_micros(10), 128);
        rec.count_eviction();
        let line = ProgressLine::new(Duration::from_secs(3600));
        let rendered = line.tick(100, 100, &rec).expect("final tick renders");
        assert!(rendered.starts_with("100/100"), "{rendered}");
        for stage in Stage::ALL {
            assert!(rendered.contains(stage.name()), "{rendered}");
        }
        assert!(rendered.contains("1 evicted"), "{rendered}");
        assert!(rendered.contains("0 frames skipped"), "{rendered}");
    }

    #[test]
    fn intermediate_ticks_omit_the_skip_count() {
        let rec = Recorder::new();
        let line = ProgressLine::new(Duration::ZERO);
        let rendered = line.tick(1, 10, &rec).expect("zero interval renders");
        assert!(!rendered.contains("skipped"), "{rendered}");
    }

    #[test]
    fn contended_tick_never_blocks_and_is_counted() {
        let rec = Recorder::new();
        let line = ProgressLine::new(Duration::ZERO);
        assert_eq!(line.skipped(), 0);
        {
            // Hold the state lock on this very thread: if tick() ever
            // blocked on a contended lock this test would deadlock
            // instead of fail.
            let _held = line.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            assert_eq!(line.tick(1, 10, &rec), None);
            assert_eq!(line.skipped(), 1, "the skipped frame must be observable");
        }
        // Once the lock is free the same tick renders, and the skip count
        // stays at the one contended frame — and the completion tick
        // surfaces it to the user.
        assert!(line.tick(2, 10, &rec).is_some());
        assert_eq!(line.skipped(), 1);
        let last = line.tick(10, 10, &rec).expect("final tick renders");
        assert!(last.contains("1 frames skipped"), "{last}");
    }

    #[test]
    fn zero_interval_renders_and_tracks_ewma() {
        let rec = Recorder::new();
        let line = ProgressLine::new(Duration::ZERO);
        rec.record(Stage::Merge, Duration::from_micros(100), 0);
        let first = line.tick(1, 10, &rec).expect("renders");
        assert!(first.contains("merge 100.0µs"), "{first}");
        // A much faster batch pulls the EWMA down, but only partially.
        for _ in 0..9 {
            rec.record(Stage::Merge, Duration::from_micros(10), 0);
        }
        let second = line.tick(10, 10, &rec).expect("renders");
        let merge_field = second
            .split(" merge ")
            .nth(1)
            .and_then(|s| s.split("µs").next())
            .and_then(|s| s.parse::<f64>().ok())
            .expect("merge EWMA parses");
        assert!(merge_field < 100.0 && merge_field > 10.0, "{second}");
    }
}
