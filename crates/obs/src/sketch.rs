//! Log-linear quantile sketch with a fixed relative-error guarantee.
//!
//! The PR-1 histograms bucketed durations by `floor(log2(ns))` alone, so a
//! reported p99 was the midpoint of a power-of-two octave — up to ~50% away
//! from the true quantile, and `BENCH_sec4e.json` percentiles were literally
//! 96/3072/49152 ns. [`QuantileSketch`] splits every octave into
//! [`SUB_BUCKETS`] linear sub-buckets (the top [`SUB_BITS`] mantissa bits
//! after the leading one), which caps the midpoint estimate's relative error
//! at `1/(2·SUB_BUCKETS)` = 3.125% — advertised conservatively as
//! [`RELATIVE_ERROR`] to absorb `u64→f64` rounding at the extremes.
//!
//! Layout (`SUB_BUCKETS = 16`):
//!
//! * values `0..16` get one exact bucket each (sub-bucket width would be
//!   below 1, so the sketch is *exact* there);
//! * a value `v ≥ 16` with exponent `e = floor(log2 v)` lands in sub-bucket
//!   `(v >> (e-4)) & 15` of octave `e`: bucket `[L, L + 2^(e-4))` with
//!   `L = (16 + sub) · 2^(e-4)`. Since `L ≥ 16·2^(e-4)`, the half-width
//!   midpoint error is at most `L/32`.
//!
//! Total buckets: `16 + 60·16 = 976`, one relaxed `AtomicU64` each — 7.6 KiB
//! per sketch, wait-free concurrent recording exactly like `StageStats`, and
//! mergeable across workers by bucket-wise addition (merging two sketches is
//! byte-equivalent to feeding both sample streams into one).

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two octave (`2^SUB_BITS`).
pub const SUB_BUCKETS: usize = 16;

/// Mantissa bits kept after the leading one.
pub const SUB_BITS: u32 = 4;

/// Total bucket count: 16 exact small-value buckets plus 16 sub-buckets for
/// each of the 60 octaves `[2^4, 2^64)`.
pub const N_SKETCH_BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// The advertised worst-case relative error of any quantile estimate.
/// Structurally the midpoint bound is `1/(2·SUB_BUCKETS)` = 3.125%; the
/// extra margin covers `u64 → f64` conversion at the top octaves. The
/// sketch proptests pin estimates inside this band.
pub const RELATIVE_ERROR: f64 = 0.045;

/// Bucket index of a sample. Exact for `v < 16`; log-linear above.
fn bucket_index(v: u64) -> usize {
    if v < SUB_BUCKETS as u64 {
        v as usize
    } else {
        let e = 63 - v.leading_zeros(); // e >= SUB_BITS
        let sub = ((v >> (e - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
        SUB_BUCKETS + (e - SUB_BITS) as usize * SUB_BUCKETS + sub
    }
}

/// Midpoint estimate of bucket `i` — the value every sample in the bucket
/// is reported as. Computed in `f64` because the top bucket's upper edge
/// (`2^64`) does not fit a `u64`.
fn bucket_midpoint(i: usize) -> f64 {
    if i < SUB_BUCKETS {
        i as f64
    } else {
        let e = SUB_BITS + ((i - SUB_BUCKETS) / SUB_BUCKETS) as u32;
        let sub = ((i - SUB_BUCKETS) % SUB_BUCKETS) as f64;
        let width = (e - SUB_BITS) as i32; // log2 of the sub-bucket width
        let scale = f64::powi(2.0, width);
        (SUB_BUCKETS as f64 + sub + 0.5) * scale
    }
}

/// A lock-free, mergeable log-linear histogram with ≤ [`RELATIVE_ERROR`]
/// relative error on every quantile. Recording is one relaxed `fetch_add`;
/// reading takes a bucket-wise snapshot first so multiple quantiles come
/// from one consistent view.
#[derive(Debug)]
pub struct QuantileSketch {
    counts: Box<[AtomicU64]>,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch::new()
    }
}

impl QuantileSketch {
    /// A fresh, empty sketch.
    pub fn new() -> QuantileSketch {
        QuantileSketch { counts: (0..N_SKETCH_BUCKETS).map(|_| AtomicU64::new(0)).collect() }
    }

    /// Record one sample. Wait-free: a single relaxed `fetch_add`.
    pub fn record(&self, v: u64) {
        self.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    /// Fold another sketch's counts into this one (bucket-wise addition).
    /// `a.merge_from(&b)` leaves `a` indistinguishable from a sketch fed
    /// both sample streams — the property the merge proptest pins.
    pub fn merge_from(&self, other: &QuantileSketch) {
        for (mine, theirs) in self.counts.iter().zip(other.counts.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// Samples recorded so far (sums all buckets — prefer keeping a
    /// dedicated counter on hot read paths).
    pub fn count(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Consistent bucket-wise snapshot for quantile queries.
    pub fn snapshot(&self) -> SketchSnapshot {
        SketchSnapshot { counts: self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect() }
    }

    /// One-off quantile query (snapshots internally).
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }
}

/// An immutable bucket-count view of a [`QuantileSketch`], from which any
/// number of quantiles can be read consistently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SketchSnapshot {
    counts: Vec<u64>,
}

impl SketchSnapshot {
    /// Total samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The `q`-quantile estimate (`0.0 ..= 1.0`): the midpoint of the
    /// bucket holding the sample of rank `ceil(q·n)` (clamped to `1..=n`),
    /// which is within [`RELATIVE_ERROR`] of the true order statistic.
    /// Returns `0.0` for an empty sketch.
    pub fn quantile(&self, q: f64) -> f64 {
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &count) in self.counts.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return bucket_midpoint(i);
            }
        }
        bucket_midpoint(N_SKETCH_BUCKETS - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let s = QuantileSketch::new();
        for v in 0..16u64 {
            s.record(v);
        }
        let snap = s.snapshot();
        // Rank i+1 is exactly the value i.
        for v in 0..16u64 {
            let q = (v + 1) as f64 / 16.0;
            assert_eq!(snap.quantile(q), v as f64, "q={q}");
        }
    }

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(15), 15);
        // 16 = 2^4, first log-linear bucket.
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(17), 17);
        assert_eq!(bucket_index(31), 31);
        // 32 = 2^5: second octave starts, sub-bucket width 2.
        assert_eq!(bucket_index(32), 32);
        assert_eq!(bucket_index(33), 32);
        assert_eq!(bucket_index(34), 33);
        assert_eq!(bucket_index(u64::MAX), N_SKETCH_BUCKETS - 1);
    }

    #[test]
    fn midpoints_sit_inside_their_buckets() {
        for i in 0..N_SKETCH_BUCKETS {
            let m = bucket_midpoint(i);
            assert!(m.is_finite());
            if i > 0 {
                assert!(m > bucket_midpoint(i - 1), "midpoints must be strictly increasing");
            }
        }
        // Spot-check: 2^10 lands in sub-bucket 0 of octave 10, bucket
        // [1024, 1088), midpoint 1056.
        assert_eq!(bucket_midpoint(bucket_index(1024)), 1056.0);
    }

    #[test]
    fn relative_error_bound_holds_at_octave_edges() {
        // Exact powers of two are the worst case of the old log2 scheme
        // (50% midpoint error); the sketch must stay within the band.
        for e in [4u32, 10, 17, 25, 40, 63] {
            let v = 1u64 << e;
            let s = QuantileSketch::new();
            for _ in 0..10 {
                s.record(v);
            }
            let est = s.quantile(0.99);
            let err = (est - v as f64).abs() / v as f64;
            assert!(err <= RELATIVE_ERROR, "2^{e}: est {est}, err {err}");
        }
    }

    #[test]
    fn extreme_values_stay_in_band() {
        for v in [0u64, 1, 2, 15, 16, 17, u64::MAX - 1, u64::MAX] {
            let s = QuantileSketch::new();
            s.record(v);
            let est = s.quantile(0.5);
            if v < 16 {
                assert_eq!(est, v as f64, "small values are exact");
            } else {
                let err = (est - v as f64).abs() / v as f64;
                assert!(err <= RELATIVE_ERROR, "v={v}: est {est}, err {err}");
            }
        }
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let s = QuantileSketch::new();
        for i in 0..1000u64 {
            s.record(i * 37 + 5);
        }
        let snap = s.snapshot();
        let mut prev = 0.0;
        for step in 1..=20 {
            let q = step as f64 / 20.0;
            let est = snap.quantile(q);
            assert!(est >= prev, "quantiles must be monotone: q={q}, {est} < {prev}");
            prev = est;
        }
    }

    #[test]
    fn merge_equals_feeding_both_streams() {
        let a = QuantileSketch::new();
        let b = QuantileSketch::new();
        let both = QuantileSketch::new();
        for v in [0u64, 3, 16, 999, 1 << 30, u64::MAX] {
            a.record(v);
            both.record(v);
        }
        for v in [7u64, 16, 4096, u64::MAX] {
            b.record(v);
            both.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), both.snapshot());
        assert_eq!(a.count(), 10);
    }

    #[test]
    fn empty_sketch_quantile_is_zero() {
        assert_eq!(QuantileSketch::new().quantile(0.5), 0.0);
        assert_eq!(QuantileSketch::new().count(), 0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let s = QuantileSketch::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let s = &s;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        s.record(t * 1_000_000 + i);
                    }
                });
            }
        });
        assert_eq!(s.count(), 4000);
    }
}
