//! The unified metrics registry: counters, gauges, and quantile sketches
//! under stable dotted names with sorted static labels.
//!
//! The registry is the naming layer over the lock-free primitives. Handles
//! ([`Counter`], [`Gauge`], [`Summary`]) are `Arc`s of pure atomics —
//! recording through one never takes the registry lock, so the hot path
//! stays wait-free exactly like `StageStats`. The lock (a plain `Mutex`
//! around a `BTreeMap`) is touched only at registration and snapshot time,
//! both of which happen a handful of times per run.
//!
//! Naming rules (enforced by sanitization, not panics — registration is
//! reachable from ingest):
//!
//! * names are lowercase dotted paths over `[a-z0-9_.]`: `mosaic.<area>.<measure>`;
//!   any other character is replaced with `_`;
//! * label keys follow the same alphabet (dots excluded); label sets are
//!   sorted by key at registration so exposition order is byte-stable;
//! * registering the same name with a different kind yields a *detached*
//!   handle: it records into thin air rather than corrupting the family or
//!   panicking on a worker thread.

use crate::expo::{MetricFamily, MetricKind, MetricsSnapshot, Sample};
use crate::sketch::QuantileSketch;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// Monotonically increasing counter. Pure telemetry: all operations are
/// relaxed and results are never consumed for control flow.
#[derive(Debug, Default)]
pub struct Counter {
    hits: AtomicU64,
}

impl Counter {
    /// Fresh zeroed counter.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `n` to the total. Wait-free.
    pub fn add(&self, n: u64) {
        self.hits.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current total.
    pub fn get(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

/// Instantaneous level (resident bytes, in-flight traces, set sizes).
/// Supports two-way movement plus a monotonic watermark mode via
/// [`Gauge::set_max`]. Pure telemetry — relaxed, results discarded.
#[derive(Debug, Default)]
pub struct Gauge {
    level: AtomicU64,
}

impl Gauge {
    /// Fresh zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the level.
    pub fn set(&self, v: u64) {
        self.level.store(v, Ordering::Relaxed);
    }

    /// Raise the level by `n`.
    pub fn add(&self, n: u64) {
        self.level.fetch_add(n, Ordering::Relaxed);
    }

    /// Lower the level by `n` (saturating is the caller's concern; in-flight
    /// style gauges pair every `sub` with a prior `add`).
    pub fn sub(&self, n: u64) {
        self.level.fetch_sub(n, Ordering::Relaxed);
    }

    /// Raise the level to at least `v` — the monotonic-watermark mode used
    /// for peak trackers.
    pub fn set_max(&self, v: u64) {
        self.level.fetch_max(v, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> u64 {
        self.level.load(Ordering::Relaxed)
    }
}

/// A registered quantile sketch plus the running sum and count that
/// OpenMetrics summaries expose — kept as dedicated counters so reading
/// them does not scan the sketch's 976 buckets.
#[derive(Debug, Default)]
pub struct Summary {
    sketch: QuantileSketch,
    sum: Counter,
    n: Counter,
}

/// Quantiles every registered summary exposes, ascending.
pub const SUMMARY_QUANTILES: [f64; 3] = [0.5, 0.9, 0.99];

impl Summary {
    /// Fresh empty summary.
    pub fn new() -> Summary {
        Summary::default()
    }

    /// Record one observation. Wait-free.
    pub fn observe(&self, v: u64) {
        self.sketch.record(v);
        self.sum.add(v);
        self.n.inc();
    }

    /// The underlying sketch (for merging or direct quantile queries).
    pub fn sketch(&self) -> &QuantileSketch {
        &self.sketch
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.n.get()
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.sum.get()
    }
}

/// A single family's registered handles, keyed by sorted label set.
#[derive(Debug)]
enum Slots {
    Counter(BTreeMap<Vec<(String, String)>, Arc<Counter>>),
    Gauge(BTreeMap<Vec<(String, String)>, Arc<Gauge>>),
    Summary(BTreeMap<Vec<(String, String)>, Arc<Summary>>),
}

impl Slots {
    fn kind(&self) -> MetricKind {
        match self {
            Slots::Counter(_) => MetricKind::Counter,
            Slots::Gauge(_) => MetricKind::Gauge,
            Slots::Summary(_) => MetricKind::Summary,
        }
    }
}

#[derive(Debug)]
struct Family {
    help: String,
    slots: Slots,
}

/// Sanitize a dotted metric name: lowercase, `[a-z0-9_.]` only.
fn sanitize_name(name: &str) -> String {
    name.chars()
        .map(|c| match c {
            'a'..='z' | '0'..='9' | '_' | '.' => c,
            'A'..='Z' => c.to_ascii_lowercase(),
            _ => '_',
        })
        .collect()
}

/// Sanitize one label key (like names, but dots are invalid too).
fn sanitize_label_key(key: &str) -> String {
    sanitize_name(key).replace('.', "_")
}

/// Normalize a label set: sanitized keys, sorted by key.
fn normalize_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (sanitize_label_key(k), (*v).to_owned())).collect();
    out.sort();
    out
}

/// The unified registry: dotted names → kinds → labelled handles. Cheap to
/// share (`Arc` it), cheap to record through (handles are lock-free);
/// the internal lock guards only registration and snapshotting.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    families: Mutex<BTreeMap<String, Family>>,
}

impl MetricsRegistry {
    /// Fresh empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get or register the counter `name{labels}`. On a kind conflict the
    /// returned handle is detached (records, but is never exported).
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let key = sanitize_name(name);
        let labels = normalize_labels(labels);
        let mut families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let family = families.entry(key).or_insert_with(|| Family {
            help: help.to_owned(),
            slots: Slots::Counter(BTreeMap::new()),
        });
        match &mut family.slots {
            Slots::Counter(slots) => Arc::clone(slots.entry(labels).or_default()),
            _ => Arc::new(Counter::new()),
        }
    }

    /// Get or register the gauge `name{labels}`; detached on kind conflict.
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let key = sanitize_name(name);
        let labels = normalize_labels(labels);
        let mut families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let family = families.entry(key).or_insert_with(|| Family {
            help: help.to_owned(),
            slots: Slots::Gauge(BTreeMap::new()),
        });
        match &mut family.slots {
            Slots::Gauge(slots) => Arc::clone(slots.entry(labels).or_default()),
            _ => Arc::new(Gauge::new()),
        }
    }

    /// Get or register the summary `name{labels}`; detached on kind conflict.
    pub fn summary(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Summary> {
        let key = sanitize_name(name);
        let labels = normalize_labels(labels);
        let mut families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let family = families.entry(key).or_insert_with(|| Family {
            help: help.to_owned(),
            slots: Slots::Summary(BTreeMap::new()),
        });
        match &mut family.slots {
            Slots::Summary(slots) => Arc::clone(slots.entry(labels).or_default()),
            _ => Arc::new(Summary::new()),
        }
    }

    /// Freeze every family into an ordering-stable [`MetricsSnapshot`].
    pub fn snapshot(&self) -> MetricsSnapshot {
        let families = self.families.lock().unwrap_or_else(PoisonError::into_inner);
        let mut out = Vec::with_capacity(families.len());
        for (name, family) in families.iter() {
            let samples = match &family.slots {
                Slots::Counter(slots) => slots
                    .iter()
                    .map(|(labels, c)| Sample {
                        labels: labels.clone(),
                        value: c.get() as f64,
                        quantiles: Vec::new(),
                        count: 0,
                    })
                    .collect(),
                Slots::Gauge(slots) => slots
                    .iter()
                    .map(|(labels, g)| Sample {
                        labels: labels.clone(),
                        value: g.get() as f64,
                        quantiles: Vec::new(),
                        count: 0,
                    })
                    .collect(),
                Slots::Summary(slots) => slots
                    .iter()
                    .map(|(labels, s)| {
                        let sketch = s.sketch().snapshot();
                        Sample {
                            labels: labels.clone(),
                            value: s.sum() as f64,
                            quantiles: SUMMARY_QUANTILES
                                .iter()
                                .map(|&q| (q, sketch.quantile(q)))
                                .collect(),
                            count: s.count(),
                        }
                    })
                    .collect(),
            };
            out.push(MetricFamily {
                name: name.clone(),
                kind: family.slots.kind(),
                help: family.help.clone(),
                samples,
            });
        }
        MetricsSnapshot { families: out }
    }
}

/// The pipeline's standard metric set, pre-registered so worker threads
/// record through cached `Arc` handles and never take the registry lock.
/// Carried by the `Recorder` when `--metrics-out` (or the incremental
/// window) is active; absent otherwise, so the metrics-off hot path is
/// untouched.
#[derive(Debug)]
pub struct PipelineMetrics {
    registry: MetricsRegistry,
    inflight: Arc<Gauge>,
    arena_resident: Arc<Gauge>,
    arena_peak: Arc<Gauge>,
    dedup_apps: Arc<Gauge>,
    worker_busy: Vec<Arc<Counter>>,
}

impl PipelineMetrics {
    /// Build the standard set for `lanes` worker lanes (lane 0 is the
    /// coordinating thread; rayon workers are 1-based).
    pub fn new(lanes: usize) -> PipelineMetrics {
        let registry = MetricsRegistry::new();
        let inflight = registry.gauge(
            "mosaic.pipeline.traces.inflight",
            "Traces currently being parsed or categorized",
            &[],
        );
        let arena_resident = registry.gauge(
            "mosaic.arena.resident_bytes",
            "Bytes resident in the reporting worker's trace arena",
            &[],
        );
        let arena_peak = registry.gauge(
            "mosaic.arena.peak_bytes",
            "High-water mark of any single trace arena",
            &[],
        );
        let dedup_apps = registry.gauge(
            "mosaic.dedup.apps",
            "Distinct application keys currently held by deduplication",
            &[],
        );
        let worker_busy = (0..lanes.max(1))
            .map(|lane| {
                let lane = lane.to_string();
                registry.counter(
                    "mosaic.worker.busy_ns",
                    "Nanoseconds each worker lane spent inside instrumented stages",
                    &[("worker", lane.as_str())],
                )
            })
            .collect();
        PipelineMetrics { registry, inflight, arena_resident, arena_peak, dedup_apps, worker_busy }
    }

    /// The in-flight traces gauge.
    pub fn inflight(&self) -> &Gauge {
        &self.inflight
    }

    /// The arena resident-bytes gauge (instantaneous).
    pub fn arena_resident(&self) -> &Gauge {
        &self.arena_resident
    }

    /// The arena peak-bytes watermark (update with [`Gauge::set_max`]).
    pub fn arena_peak(&self) -> &Gauge {
        &self.arena_peak
    }

    /// The dedup set-size gauge.
    pub fn dedup_apps(&self) -> &Gauge {
        &self.dedup_apps
    }

    /// Busy-time counter for `lane`, if it exists (out-of-range lanes —
    /// possible if rayon grows its pool mid-run — are dropped, not panicked
    /// on).
    pub fn worker_busy(&self, lane: usize) -> Option<&Counter> {
        self.worker_busy.get(lane).map(Arc::as_ref)
    }

    /// Count one eviction under its typed reason slug.
    pub fn count_eviction(&self, reason: &str) {
        self.registry
            .counter(
                "mosaic.pipeline.evictions",
                "Funnel evictions by reason",
                &[("reason", reason)],
            )
            .inc();
    }

    /// The underlying registry, for callers registering their own series.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Snapshot the registry (stage families are added by
    /// `Recorder::export_metrics`, which owns the stage stats).
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
        g.set_max(7);
        assert_eq!(g.get(), 12, "set_max never lowers");
        g.set_max(99);
        assert_eq!(g.get(), 99);
    }

    #[test]
    fn registry_returns_the_same_handle_for_the_same_series() {
        let r = MetricsRegistry::new();
        let a = r.counter("mosaic.test.hits", "h", &[("k", "v")]);
        let b = r.counter("mosaic.test.hits", "h", &[("k", "v")]);
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "both handles alias one counter");
        let other = r.counter("mosaic.test.hits", "h", &[("k", "w")]);
        other.inc();
        assert_eq!(other.get(), 1, "different labels, different series");
    }

    #[test]
    fn kind_conflict_detaches_instead_of_corrupting() {
        let r = MetricsRegistry::new();
        let c = r.counter("mosaic.test.metric", "h", &[]);
        c.add(7);
        let g = r.gauge("mosaic.test.metric", "h", &[]);
        g.set(100);
        let snap = r.snapshot();
        assert_eq!(snap.families.len(), 1);
        assert_eq!(snap.families[0].kind, MetricKind::Counter);
        assert_eq!(snap.families[0].samples[0].value, 7.0, "gauge write went to a detached handle");
    }

    #[test]
    fn names_and_label_keys_are_sanitized_and_sorted() {
        let r = MetricsRegistry::new();
        r.counter("Mosaic.Weird Name!", "h", &[("z.key", "1"), ("a key", "2")]).inc();
        let snap = r.snapshot();
        assert_eq!(snap.families[0].name, "mosaic.weird_name_");
        assert_eq!(
            snap.families[0].samples[0].labels,
            vec![("a_key".to_owned(), "2".to_owned()), ("z_key".to_owned(), "1".to_owned())]
        );
    }

    #[test]
    fn snapshot_orders_families_by_name() {
        let r = MetricsRegistry::new();
        r.gauge("mosaic.b", "h", &[]).set(1);
        r.counter("mosaic.a", "h", &[]).inc();
        let snap = r.snapshot();
        let names: Vec<&str> = snap.families.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["mosaic.a", "mosaic.b"]);
    }

    #[test]
    fn summary_exposes_quantiles_sum_and_count() {
        let r = MetricsRegistry::new();
        let s = r.summary("mosaic.test.latency_ns", "h", &[]);
        for v in [100u64, 200, 300, 400] {
            s.observe(v);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.sum(), 1000);
        let snap = r.snapshot();
        let sample = &snap.families[0].samples[0];
        assert_eq!(sample.count, 4);
        assert_eq!(sample.value, 1000.0);
        assert_eq!(sample.quantiles.len(), SUMMARY_QUANTILES.len());
        assert!(sample.quantiles[0].1 <= sample.quantiles[2].1, "quantiles are monotone");
    }

    #[test]
    fn pipeline_metrics_standard_set() {
        let m = PipelineMetrics::new(2);
        m.inflight().add(3);
        m.inflight().sub(1);
        m.arena_resident().set(4096);
        m.arena_peak().set_max(4096);
        m.dedup_apps().set(5);
        m.count_eviction("io-error");
        m.count_eviction("io-error");
        assert!(m.worker_busy(1).is_some());
        assert!(m.worker_busy(99).is_none());
        if let Some(w) = m.worker_busy(0) {
            w.add(500);
        }
        let snap = m.snapshot();
        let names: Vec<&str> = snap.families.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "mosaic.arena.peak_bytes",
                "mosaic.arena.resident_bytes",
                "mosaic.dedup.apps",
                "mosaic.pipeline.evictions",
                "mosaic.pipeline.traces.inflight",
                "mosaic.worker.busy_ns",
            ]
        );
        let evictions = &snap.families[3];
        assert_eq!(evictions.samples[0].labels[0].1, "io-error");
        assert_eq!(evictions.samples[0].value, 2.0);
        let inflight = &snap.families[4];
        assert_eq!(inflight.samples[0].value, 2.0);
    }
}
