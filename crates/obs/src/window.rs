//! Bounded ring of per-interval metrics snapshots — the queryable
//! health-history primitive the incremental path maintains and a future
//! `mosaic serve` shard will expose.
//!
//! A [`MetricsWindow`] takes a full [`MetricsSnapshot`] every `every`
//! ingested traces and keeps the most recent `capacity` of them. Memory is
//! strictly bounded: old entries are dropped (and counted) as new ones
//! arrive, mirroring the `Tracer` ring's drop accounting. Snapshots are
//! only *taken* when an interval boundary passes — [`MetricsWindow::offer`]
//! takes a closure, so skipped offers cost one comparison and zero
//! allocation.

use crate::expo::MetricsSnapshot;
use std::collections::VecDeque;

/// One health-history entry: the registry state as of `at_trace` ingests.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowEntry {
    /// Total traces ingested when the snapshot was taken.
    pub at_trace: u64,
    /// The frozen registry state.
    pub snapshot: MetricsSnapshot,
}

/// A bounded ring of per-interval [`MetricsSnapshot`]s.
#[derive(Debug)]
pub struct MetricsWindow {
    every: u64,
    capacity: usize,
    entries: VecDeque<WindowEntry>,
    last_at: Option<u64>,
    dropped: u64,
}

impl MetricsWindow {
    /// A window snapshotting every `every` traces (clamped to ≥ 1), keeping
    /// the latest `capacity` entries (clamped to ≥ 1).
    pub fn new(every: u64, capacity: usize) -> MetricsWindow {
        MetricsWindow {
            every: every.max(1),
            capacity: capacity.max(1),
            entries: VecDeque::new(),
            last_at: None,
            dropped: 0,
        }
    }

    /// The snapshot interval in traces.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Offer a snapshot opportunity at `at_trace` total ingests. If an
    /// interval boundary has been reached since the last accepted offer,
    /// `make` is invoked, the entry stored (evicting the oldest beyond
    /// capacity), and `true` returned; otherwise nothing happens.
    pub fn offer(&mut self, at_trace: u64, make: impl FnOnce() -> MetricsSnapshot) -> bool {
        let due = match self.last_at {
            None => at_trace >= self.every,
            Some(last) => at_trace >= last + self.every,
        };
        if !due {
            return false;
        }
        self.last_at = Some(at_trace);
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(WindowEntry { at_trace, snapshot: make() });
        true
    }

    /// The retained entries, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &WindowEntry> {
        self.entries.iter()
    }

    /// The most recent entry, if any.
    pub fn latest(&self) -> Option<&WindowEntry> {
        self.entries.back()
    }

    /// Retained entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no snapshot has been taken yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted to honor the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_snap() -> MetricsSnapshot {
        MetricsSnapshot { families: Vec::new() }
    }

    #[test]
    fn offers_fire_only_on_interval_boundaries() {
        let mut w = MetricsWindow::new(10, 4);
        assert!(!w.offer(1, empty_snap));
        assert!(!w.offer(9, empty_snap));
        assert!(w.offer(10, empty_snap));
        assert!(!w.offer(11, empty_snap), "interval restarts from the accepted offer");
        assert!(!w.offer(19, empty_snap));
        assert!(w.offer(20, empty_snap));
        assert_eq!(w.len(), 2);
        assert_eq!(w.latest().map(|e| e.at_trace), Some(20));
    }

    #[test]
    fn skipped_offers_never_invoke_the_closure() {
        let mut w = MetricsWindow::new(100, 4);
        let mut calls = 0;
        for i in 1..100 {
            w.offer(i, || {
                calls += 1;
                empty_snap()
            });
        }
        assert_eq!(calls, 0);
    }

    #[test]
    fn capacity_bounds_memory_and_counts_drops() {
        let mut w = MetricsWindow::new(1, 3);
        for i in 1..=5 {
            assert!(w.offer(i, empty_snap));
        }
        assert_eq!(w.len(), 3);
        assert_eq!(w.dropped(), 2);
        let ats: Vec<u64> = w.entries().map(|e| e.at_trace).collect();
        assert_eq!(ats, [3, 4, 5], "oldest evicted first");
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let mut w = MetricsWindow::new(0, 0);
        assert_eq!(w.every(), 1);
        assert!(w.offer(1, empty_snap));
        assert!(w.offer(2, empty_snap));
        assert_eq!(w.len(), 1, "capacity clamps to 1");
        assert_eq!(w.dropped(), 1);
        assert!(!w.is_empty());
    }

    #[test]
    fn coarse_ingest_jumps_still_snapshot() {
        // Batched ingestion can jump past several boundaries at once; the
        // window takes one snapshot per offer, not per boundary.
        let mut w = MetricsWindow::new(10, 8);
        assert!(w.offer(35, empty_snap));
        assert!(!w.offer(44, empty_snap));
        assert!(w.offer(45, empty_snap));
        assert_eq!(w.len(), 2);
    }
}
