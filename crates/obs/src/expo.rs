//! Metric exposition: serializable registry snapshots and their rendering
//! as Prometheus/OpenMetrics text or JSON.
//!
//! A [`MetricsSnapshot`] is the frozen, ordering-stable view of everything
//! the run is measuring: families sorted by name, samples inside a family
//! sorted by their label sets, quantiles ascending. Because the ordering is
//! fixed at snapshot time, both renderings are byte-stable — the same
//! counters always produce the same file, which is what the committed
//! OpenMetrics golden and the CI `metrics-export` artifact rely on.
//!
//! The text rendering follows the OpenMetrics conventions a Prometheus
//! scrape expects: dotted registry names are mangled to `snake_case`
//! (`mosaic.arena.resident_bytes` → `mosaic_arena_resident_bytes`),
//! counters gain the `_total` suffix, summaries expand to
//! `{quantile="…"}` series plus `_sum`/`_count`, label values are escaped,
//! and the output ends with `# EOF`.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// The three metric shapes the registry understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum MetricKind {
    /// Monotonically increasing count (`_total` in OpenMetrics).
    Counter,
    /// Instantaneous level that can move both ways (or a watermark).
    Gauge,
    /// A quantile sketch exposed as `{quantile=…}` series + sum + count.
    Summary,
}

impl MetricKind {
    /// OpenMetrics `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Summary => "summary",
        }
    }
}

/// One exported series: its sorted labels and value. Summaries additionally
/// carry `(q, estimate)` pairs and an observation count; for counters and
/// gauges those stay empty/zero.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Label pairs, sorted by key (empty for unlabelled series).
    pub labels: Vec<(String, String)>,
    /// Counter total, gauge level, or summary sum.
    pub value: f64,
    /// Summary quantile estimates as `(q, value)`, ascending in `q`.
    #[serde(default)]
    pub quantiles: Vec<(f64, f64)>,
    /// Summary observation count (0 for counters/gauges).
    #[serde(default)]
    pub count: u64,
}

/// One metric family: a stable dotted name, its kind, a help line, and the
/// samples sharing the name (distinguished by labels).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricFamily {
    /// Dotted lowercase registry name, e.g. `mosaic.arena.resident_bytes`.
    pub name: String,
    /// Counter, gauge, or summary.
    pub kind: MetricKind,
    /// One-line description, emitted as `# HELP`.
    pub help: String,
    /// Samples, sorted by label set.
    pub samples: Vec<Sample>,
}

/// A frozen, ordering-stable view of every registered metric — the unit of
/// exposition, of [`MetricsWindow`](crate::window::MetricsWindow) history
/// entries, and of the `--metrics-out` file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Families sorted by name.
    pub families: Vec<MetricFamily>,
}

/// Mangle a dotted registry name into an OpenMetrics identifier.
fn om_name(name: &str) -> String {
    name.chars().map(|c| if c == '.' { '_' } else { c }).collect()
}

/// Escape a label value per the OpenMetrics text format.
fn om_escape(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Render a sample value: integers without a trailing `.0`, everything else
/// via Rust's shortest-roundtrip float formatting (deterministic).
fn om_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.007_199_254_740_992e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render a label set as `{k="v",…}`, or nothing when empty. `extra` lets
/// summary quantile series append their `quantile` label last.
fn om_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{}\"", om_escape(v));
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{}\"", om_escape(v));
    }
    out.push('}');
    out
}

impl MetricsSnapshot {
    /// Render as OpenMetrics/Prometheus text. Byte-stable for a given
    /// snapshot; ends with `# EOF`.
    pub fn to_openmetrics(&self) -> String {
        let mut out = String::new();
        for family in &self.families {
            let name = om_name(&family.name);
            let _ = writeln!(out, "# HELP {name} {}", family.help);
            let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
            for sample in &family.samples {
                match family.kind {
                    MetricKind::Counter => {
                        let _ = writeln!(
                            out,
                            "{name}_total{} {}",
                            om_labels(&sample.labels, None),
                            om_value(sample.value)
                        );
                    }
                    MetricKind::Gauge => {
                        let _ = writeln!(
                            out,
                            "{name}{} {}",
                            om_labels(&sample.labels, None),
                            om_value(sample.value)
                        );
                    }
                    MetricKind::Summary => {
                        for (q, est) in &sample.quantiles {
                            let q_str = format!("{q}");
                            let _ = writeln!(
                                out,
                                "{name}{} {}",
                                om_labels(&sample.labels, Some(("quantile", &q_str))),
                                om_value(*est)
                            );
                        }
                        let _ = writeln!(
                            out,
                            "{name}_sum{} {}",
                            om_labels(&sample.labels, None),
                            om_value(sample.value)
                        );
                        let _ = writeln!(
                            out,
                            "{name}_count{} {}",
                            om_labels(&sample.labels, None),
                            sample.count
                        );
                    }
                }
            }
        }
        out.push_str("# EOF\n");
        out
    }

    /// Render as pretty JSON (sorted object keys — byte-stable).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| String::from("{}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap() -> MetricsSnapshot {
        MetricsSnapshot {
            families: vec![
                MetricFamily {
                    name: "mosaic.arena.resident_bytes".to_owned(),
                    kind: MetricKind::Gauge,
                    help: "Bytes resident in thread-local trace arenas".to_owned(),
                    samples: vec![Sample {
                        labels: vec![],
                        value: 4096.0,
                        quantiles: vec![],
                        count: 0,
                    }],
                },
                MetricFamily {
                    name: "mosaic.pipeline.evictions".to_owned(),
                    kind: MetricKind::Counter,
                    help: "Funnel evictions by reason".to_owned(),
                    samples: vec![
                        Sample {
                            labels: vec![("reason".to_owned(), "io-error".to_owned())],
                            value: 2.0,
                            quantiles: vec![],
                            count: 0,
                        },
                        Sample {
                            labels: vec![("reason".to_owned(), "parse-error".to_owned())],
                            value: 1.0,
                            quantiles: vec![],
                            count: 0,
                        },
                    ],
                },
                MetricFamily {
                    name: "mosaic.stage.latency_ns".to_owned(),
                    kind: MetricKind::Summary,
                    help: "Stage call latency".to_owned(),
                    samples: vec![Sample {
                        labels: vec![("stage".to_owned(), "parse".to_owned())],
                        value: 5000.0,
                        quantiles: vec![(0.5, 1056.0), (0.99, 4224.0)],
                        count: 4,
                    }],
                },
            ],
        }
    }

    #[test]
    fn openmetrics_text_has_types_suffixes_and_eof() {
        let text = snap().to_openmetrics();
        assert!(text.contains("# TYPE mosaic_arena_resident_bytes gauge"));
        assert!(text.contains("mosaic_arena_resident_bytes 4096\n"));
        assert!(text.contains("# TYPE mosaic_pipeline_evictions counter"));
        assert!(text.contains("mosaic_pipeline_evictions_total{reason=\"io-error\"} 2\n"));
        assert!(text.contains("# TYPE mosaic_stage_latency_ns summary"));
        assert!(text.contains("mosaic_stage_latency_ns{stage=\"parse\",quantile=\"0.5\"} 1056\n"));
        assert!(text.contains("mosaic_stage_latency_ns_sum{stage=\"parse\"} 5000\n"));
        assert!(text.contains("mosaic_stage_latency_ns_count{stage=\"parse\"} 4\n"));
        assert!(text.ends_with("# EOF\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let labels = vec![("reason".to_owned(), "a\"b\\c\nd".to_owned())];
        assert_eq!(om_labels(&labels, None), "{reason=\"a\\\"b\\\\c\\nd\"}");
    }

    #[test]
    fn rendering_is_byte_stable() {
        assert_eq!(snap().to_openmetrics(), snap().to_openmetrics());
        assert_eq!(snap().to_json(), snap().to_json());
    }

    #[test]
    fn json_roundtrips() {
        let s = snap();
        let back: MetricsSnapshot = serde_json::from_str(&s.to_json()).expect("roundtrip");
        assert_eq!(back, s);
    }

    #[test]
    fn integer_values_drop_the_point_and_floats_keep_it() {
        assert_eq!(om_value(4096.0), "4096");
        assert_eq!(om_value(0.0), "0");
        assert_eq!(om_value(1056.5), "1056.5");
    }
}
