//! # mosaic-obs
//!
//! Per-stage observability for the MOSAIC pipeline: lock-free counters,
//! log-linear [`QuantileSketch`] timing histograms and throughput
//! accounting, recorded from worker threads with relaxed atomics and
//! snapshotted into a serializable [`MetricsReport`] when a run finishes.
//! On top of the per-stage substrate sit a unified [`MetricsRegistry`]
//! (counters, gauges, and summaries under stable dotted names — see
//! [`metrics`]), OpenMetrics/JSON exposition (see [`expo`]), and a bounded
//! ring of windowed health snapshots (see [`window`]).
//!
//! The paper's §IV-E performance claims (and every later optimisation PR)
//! need per-stage evidence, not a single wall-clock number: this crate is
//! the substrate. A [`Recorder`] is shared by all workers; each records
//! `(stage, duration, bytes)` triples as it processes traces. Recording is
//! wait-free — one `fetch_add` per field — so the instrumentation does not
//! perturb the throughput it measures.
//!
//! ```
//! use mosaic_obs::{Recorder, Stage};
//! use std::time::Duration;
//!
//! let rec = Recorder::new();
//! rec.record(Stage::Parse, Duration::from_micros(250), 4096);
//! rec.record(Stage::Categorize, Duration::from_micros(900), 0);
//! let report = rec.finish(1, 1);
//! assert_eq!(report.traces, 1);
//! assert_eq!(report.stages[Stage::Parse.index()].calls, 1);
//! assert!(report.render_table().contains("parse"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod expo;
pub mod metrics;
pub mod progress;
pub mod sketch;
pub mod trace;
pub mod window;

pub use expo::{MetricFamily, MetricKind, MetricsSnapshot, Sample};
pub use metrics::{Counter, Gauge, MetricsRegistry, PipelineMetrics, Summary, SUMMARY_QUANTILES};
pub use progress::ProgressLine;
pub use sketch::{QuantileSketch, SketchSnapshot, N_SKETCH_BUCKETS, RELATIVE_ERROR};
pub use trace::{
    Exemplar, Span, SpanEvent, SpanOutcome, StageExemplars, TraceTimeline, Tracer,
    EXEMPLARS_PER_STAGE,
};
pub use window::{MetricsWindow, WindowEntry};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A [`Duration`] as saturating nanoseconds — the span/histogram currency.
pub fn nanos_of(elapsed: Duration) -> u64 {
    u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX)
}

/// The pipeline stages instrumented by the executor, in processing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Stage {
    /// Reading raw input from the source (disk, memory, generator).
    Fetch,
    /// Decoding MDF bytes into a trace log.
    Parse,
    /// Validity checking and per-record sanitization.
    Validate,
    /// Merging raw operations (rank + gap passes) inside categorization.
    Merge,
    /// The three characterizations proper (merging excluded).
    Categorize,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 5] =
        [Stage::Fetch, Stage::Parse, Stage::Validate, Stage::Merge, Stage::Categorize];

    /// Stable lowercase name (also the JSON spelling).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Fetch => "fetch",
            Stage::Parse => "parse",
            Stage::Validate => "validate",
            Stage::Merge => "merge",
            Stage::Categorize => "categorize",
        }
    }

    /// Position in [`Stage::ALL`] (and in [`MetricsReport::stages`]).
    pub fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Lock-free accumulator for one stage: call count, total/max nanoseconds,
/// bytes moved and a log-linear [`QuantileSketch`] latency histogram. All
/// fields use relaxed atomics — the counts are telemetry, not
/// synchronization points. Calls and nanos are kept as dedicated counters
/// (not derived from the sketch) so hot readers like the progress line
/// never scan the sketch's buckets.
#[derive(Debug, Default)]
pub struct StageStats {
    calls: AtomicU64,
    nanos: AtomicU64,
    max_nanos: AtomicU64,
    bytes: AtomicU64,
    sketch: QuantileSketch,
}

impl StageStats {
    /// Fresh, zeroed stats.
    pub fn new() -> StageStats {
        StageStats::default()
    }

    /// Record one timed call. Wait-free.
    pub fn record(&self, nanos: u64, bytes: u64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        if bytes > 0 {
            self.bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        self.sketch.record(nanos);
    }

    /// Bytes recorded so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Calls recorded so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Total nanoseconds recorded so far.
    pub fn nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }

    /// The latency sketch (nanosecond samples), for merging or direct
    /// quantile queries beyond the snapshot's p50/p99.
    pub fn sketch(&self) -> &QuantileSketch {
        &self.sketch
    }

    /// Consistent-enough snapshot for reporting (individual fields are read
    /// relaxed; exactness across fields is not required of telemetry).
    /// Quantiles come from the sketch and are within [`RELATIVE_ERROR`] of
    /// the true order statistics.
    pub fn snapshot(&self, stage: Stage) -> StageSnapshot {
        let calls = self.calls.load(Ordering::Relaxed);
        let nanos = self.nanos.load(Ordering::Relaxed);
        let sketch = self.sketch.snapshot();
        StageSnapshot {
            stage: stage.name().to_owned(),
            calls,
            total_seconds: nanos as f64 / 1e9,
            mean_micros: if calls == 0 { 0.0 } else { nanos as f64 / calls as f64 / 1_000.0 },
            p50_micros: sketch.quantile(0.50) / 1_000.0,
            p99_micros: sketch.quantile(0.99) / 1_000.0,
            max_micros: self.max_nanos.load(Ordering::Relaxed) as f64 / 1_000.0,
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

/// Immutable, serializable view of one stage's accumulated statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSnapshot {
    /// Stage name (see [`Stage::name`]).
    pub stage: String,
    /// Number of recorded calls.
    pub calls: u64,
    /// Total time spent in the stage, summed over all workers.
    pub total_seconds: f64,
    /// Mean call duration in microseconds.
    pub mean_micros: f64,
    /// Median call duration in microseconds (sketch estimate, within
    /// [`RELATIVE_ERROR`]).
    pub p50_micros: f64,
    /// 99th-percentile call duration in microseconds (sketch estimate,
    /// within [`RELATIVE_ERROR`]).
    pub p99_micros: f64,
    /// Slowest observed call in microseconds.
    pub max_micros: f64,
    /// Bytes processed by the stage (0 when not byte-oriented).
    pub bytes: u64,
}

/// The merged end-of-run metrics: wall-clock, throughput and one
/// [`StageSnapshot`] per stage, in pipeline order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Wall-clock seconds from recorder construction to [`Recorder::finish`].
    pub wall_seconds: f64,
    /// Worker threads the run was configured with.
    pub workers: usize,
    /// Traces presented to the pipeline.
    pub traces: u64,
    /// End-to-end throughput: `traces / wall_seconds`.
    pub traces_per_second: f64,
    /// Raw trace bytes decoded (the parse stage's byte count).
    pub bytes: u64,
    /// Byte throughput: `bytes / wall_seconds`.
    pub bytes_per_second: f64,
    /// Per-stage statistics, ordered as [`Stage::ALL`].
    pub stages: Vec<StageSnapshot>,
}

impl MetricsReport {
    /// Render as an aligned text table (CLI / bench output).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "stage", "calls", "total s", "mean µs", "p50 µs", "p99 µs", "max µs", "MiB"
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "{:<12} {:>10} {:>10.3} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
                s.stage,
                s.calls,
                s.total_seconds,
                s.mean_micros,
                s.p50_micros,
                s.p99_micros,
                s.max_micros,
                s.bytes as f64 / (1u64 << 20) as f64,
            );
        }
        let _ = writeln!(
            out,
            "wall {:.3} s · {} workers · {:.0} traces/s · {:.1} MiB/s",
            self.wall_seconds,
            self.workers,
            self.traces_per_second,
            self.bytes_per_second / (1u64 << 20) as f64,
        );
        out
    }

    /// Render as Markdown table rows (for `report_md`).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| stage | calls | total s | mean µs | p50 µs | p99 µs |");
        let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|");
        for s in &self.stages {
            let _ = writeln!(
                out,
                "| `{}` | {} | {:.3} | {:.1} | {:.1} | {:.1} |",
                s.stage, s.calls, s.total_seconds, s.mean_micros, s.p50_micros, s.p99_micros
            );
        }
        let _ = writeln!(
            out,
            "\nWall-clock **{:.3} s** on {} workers — **{:.0} traces/s**, {:.1} MiB/s of raw trace bytes.",
            self.wall_seconds,
            self.workers,
            self.traces_per_second,
            self.bytes_per_second / (1u64 << 20) as f64,
        );
        out
    }
}

/// The shared, thread-safe metrics sink: one [`StageStats`] per stage, a
/// live eviction counter, the run's start instant, and (optionally) a
/// structured [`Tracer`] and a [`PipelineMetrics`] registry. Workers record
/// through `&Recorder`; the executor snapshots with [`Recorder::finish`]
/// once all workers are done.
#[derive(Debug)]
pub struct Recorder {
    stages: [StageStats; Stage::ALL.len()],
    evictions: AtomicU64,
    tracer: Option<Tracer>,
    metrics: Option<Arc<PipelineMetrics>>,
    started: Instant,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// Start a recorder; wall-clock measurement begins now. Tracing is off:
    /// span recording degenerates to the aggregate counters, with zero
    /// extra allocation on the hot path.
    pub fn new() -> Recorder {
        Recorder {
            stages: std::array::from_fn(|_| StageStats::new()),
            evictions: AtomicU64::new(0),
            // lint: allow(nondeterminism, "the Recorder exists to measure wall-clock; its metrics are excluded from ResultSnapshot digests")
            started: Instant::now(),
            tracer: None,
            metrics: None,
        }
    }

    /// Start a recorder with structured span tracing enabled: a [`Tracer`]
    /// ring holding up to `capacity` spans, snapshotted by
    /// [`Recorder::timeline`].
    pub fn with_tracer(capacity: usize) -> Recorder {
        Recorder { tracer: Some(Tracer::new(capacity)), ..Recorder::new() }
    }

    /// Attach a [`PipelineMetrics`] registry: spans start feeding per-worker
    /// busy counters and [`Recorder::export_metrics`] includes the
    /// registry's families. Builder-style, composes with
    /// [`Recorder::with_tracer`].
    pub fn with_pipeline_metrics(self, metrics: Arc<PipelineMetrics>) -> Recorder {
        Recorder { metrics: Some(metrics), ..self }
    }

    /// The attached pipeline metrics registry, when metrics are enabled.
    pub fn pipeline_metrics(&self) -> Option<&PipelineMetrics> {
        self.metrics.as_deref()
    }

    /// `true` when structured span tracing is enabled.
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// The structured tracer, when tracing is enabled.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Nanoseconds since the recorder's epoch — the span time base.
    pub fn now_ns(&self) -> u64 {
        // lint: allow(nondeterminism, "span start offsets are telemetry; timelines are excluded from ResultSnapshot digests")
        nanos_of(self.started.elapsed())
    }

    /// Record one span: the aggregate counters always, the structured
    /// tracer when enabled. This is the executor's per-stage call site —
    /// one method, so tracing on/off cannot diverge in what is counted.
    pub fn span(&self, span: Span<'_>) {
        self.record_nanos(span.stage, span.duration_ns, span.bytes);
        if let Some(metrics) = &self.metrics {
            if let Some(busy) =
                usize::try_from(span.worker).ok().and_then(|lane| metrics.worker_busy(lane))
            {
                busy.add(span.duration_ns);
            }
        }
        if let Some(tracer) = &self.tracer {
            tracer.record(span);
        }
    }

    /// Count one funnel eviction (live telemetry for progress lines; the
    /// authoritative typed accounting lives in the pipeline's funnel).
    pub fn count_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Evictions counted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Snapshot the structured timeline, when tracing is enabled.
    pub fn timeline(&self) -> Option<TraceTimeline> {
        self.tracer.as_ref().map(Tracer::snapshot)
    }

    /// Record one timed call of `stage`.
    pub fn record(&self, stage: Stage, elapsed: Duration, bytes: u64) {
        self.record_nanos(stage, nanos_of(elapsed), bytes);
    }

    /// Record with a raw nanosecond count (for durations measured elsewhere).
    pub fn record_nanos(&self, stage: Stage, nanos: u64, bytes: u64) {
        // lint: allow(panic, "enum-derived index: Stage::index() < Stage::ALL.len() by construction")
        self.stages[stage.index()].record(nanos, bytes);
    }

    /// Time a closure and record it.
    pub fn time<T>(&self, stage: Stage, bytes: u64, f: impl FnOnce() -> T) -> T {
        // lint: allow(nondeterminism, "the Recorder exists to measure wall-clock; its metrics are excluded from ResultSnapshot digests")
        let t = Instant::now();
        let out = f();
        // lint: allow(nondeterminism, "stage timing telemetry; metrics are excluded from ResultSnapshot digests")
        self.record(stage, t.elapsed(), bytes);
        out
    }

    /// Access one stage's live stats.
    pub fn stage(&self, stage: Stage) -> &StageStats {
        // lint: allow(panic, "enum-derived index: Stage::index() < Stage::ALL.len() by construction")
        &self.stages[stage.index()]
    }

    /// Snapshot everything into a [`MetricsReport`]. `traces` is the number
    /// of inputs presented; `workers` the configured thread count.
    pub fn finish(&self, traces: u64, workers: usize) -> MetricsReport {
        // lint: allow(nondeterminism, "wall-clock summary telemetry; metrics are excluded from ResultSnapshot digests")
        let wall = self.started.elapsed().as_secs_f64().max(1e-9);
        let stages: Vec<StageSnapshot> =
            Stage::ALL.iter().map(|&s| self.stage(s).snapshot(s)).collect();
        let bytes = self.stage(Stage::Parse).bytes();
        MetricsReport {
            wall_seconds: wall,
            workers: workers.max(1),
            traces,
            traces_per_second: traces as f64 / wall,
            bytes,
            bytes_per_second: bytes as f64 / wall,
            stages,
        }
    }

    /// Freeze everything this recorder measures into one ordering-stable
    /// [`MetricsSnapshot`]: the per-stage families (calls, busy time, bytes,
    /// and the latency summary backed by the sketch) merged with the
    /// attached registry's families, sorted by name. Deliberately excludes
    /// wall-clock so identical recorded workloads export identical bytes.
    pub fn export_metrics(&self) -> MetricsSnapshot {
        let mut calls = Vec::with_capacity(Stage::ALL.len());
        let mut busy = Vec::with_capacity(Stage::ALL.len());
        let mut bytes = Vec::with_capacity(Stage::ALL.len());
        let mut latency = Vec::with_capacity(Stage::ALL.len());
        for &stage in Stage::ALL.iter() {
            let stats = self.stage(stage);
            let labels = vec![("stage".to_owned(), stage.name().to_owned())];
            let plain = |value: u64| Sample {
                labels: labels.clone(),
                value: value as f64,
                quantiles: Vec::new(),
                count: 0,
            };
            calls.push(plain(stats.calls()));
            busy.push(plain(stats.nanos()));
            bytes.push(plain(stats.bytes()));
            let sketch = stats.sketch().snapshot();
            latency.push(Sample {
                labels,
                value: stats.nanos() as f64,
                quantiles: SUMMARY_QUANTILES.iter().map(|&q| (q, sketch.quantile(q))).collect(),
                count: stats.calls(),
            });
        }
        let mut families = vec![
            MetricFamily {
                name: "mosaic.stage.calls".to_owned(),
                kind: MetricKind::Counter,
                help: "Instrumented calls per pipeline stage".to_owned(),
                samples: calls,
            },
            MetricFamily {
                name: "mosaic.stage.busy_ns".to_owned(),
                kind: MetricKind::Counter,
                help: "Nanoseconds spent per pipeline stage, summed over workers".to_owned(),
                samples: busy,
            },
            MetricFamily {
                name: "mosaic.stage.bytes".to_owned(),
                kind: MetricKind::Counter,
                help: "Bytes processed per pipeline stage".to_owned(),
                samples: bytes,
            },
            MetricFamily {
                name: "mosaic.stage.latency_ns".to_owned(),
                kind: MetricKind::Summary,
                help: "Per-call stage latency (sketch quantiles)".to_owned(),
                samples: latency,
            },
        ];
        for family in &mut families {
            family.samples.sort_by(|a, b| a.labels.cmp(&b.labels));
        }
        if let Some(metrics) = &self.metrics {
            families.extend(metrics.snapshot().families);
        }
        families.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsSnapshot { families }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_order_and_names() {
        assert_eq!(Stage::ALL.len(), 5);
        assert_eq!(Stage::Fetch.index(), 0);
        assert_eq!(Stage::Categorize.index(), 4);
        assert_eq!(Stage::Merge.name(), "merge");
        assert_eq!(Stage::Parse.to_string(), "parse");
    }

    #[test]
    fn record_and_snapshot_aggregate() {
        let s = StageStats::new();
        s.record(1_000, 10);
        s.record(3_000, 20);
        s.record(2_000, 0);
        let snap = s.snapshot(Stage::Parse);
        assert_eq!(snap.calls, 3);
        assert_eq!(snap.bytes, 30);
        assert!((snap.total_seconds - 6e-6).abs() < 1e-12);
        assert!((snap.mean_micros - 2.0).abs() < 1e-9);
        assert!((snap.max_micros - 3.0).abs() < 1e-9);
        // p50 falls in the bucket holding 1000–2047 ns.
        assert!(snap.p50_micros > 0.5 && snap.p50_micros < 4.0, "{}", snap.p50_micros);
    }

    #[test]
    fn empty_stats_quantiles_are_zero() {
        let snap = StageStats::new().snapshot(Stage::Fetch);
        assert_eq!(snap.calls, 0);
        assert_eq!(snap.p50_micros, 0.0);
        assert_eq!(snap.p99_micros, 0.0);
        assert_eq!(snap.mean_micros, 0.0);
    }

    #[test]
    fn recorder_merges_across_threads() {
        let rec = Recorder::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        rec.record(Stage::Parse, Duration::from_micros(5), 100);
                        rec.record(Stage::Validate, Duration::from_micros(2), 0);
                    }
                });
            }
        });
        let report = rec.finish(400, 4);
        assert_eq!(report.stages[Stage::Parse.index()].calls, 400);
        assert_eq!(report.stages[Stage::Validate.index()].calls, 400);
        assert_eq!(report.bytes, 40_000);
        assert_eq!(report.traces, 400);
        assert!(report.traces_per_second > 0.0);
    }

    #[test]
    fn report_serializes_and_renders() {
        let rec = Recorder::new();
        rec.record(Stage::Fetch, Duration::from_micros(1), 64);
        let report = rec.finish(1, 2);
        let json = serde_json::to_string(&report).unwrap();
        let back: MetricsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        let table = report.render_table();
        for name in ["fetch", "parse", "validate", "merge", "categorize", "workers"] {
            assert!(table.contains(name), "missing {name} in\n{table}");
        }
        let md = report.render_markdown();
        assert!(md.contains("| `fetch` |"));
        assert!(md.contains("traces/s"));
    }

    #[test]
    fn quantiles_stay_within_the_sketch_error_band_at_octave_edges() {
        // A duration of exactly 2^i ns was the old log₂ scheme's worst
        // case: the octave midpoint over-reported it by 50%. The sketch's
        // linear sub-buckets pin the estimate within RELATIVE_ERROR, and
        // midpoint reporting still never under-reports the true value.
        for i in [4u32, 10, 17, 25] {
            let s = StageStats::new();
            for _ in 0..100 {
                s.record(1u64 << i, 0);
            }
            let snap = s.snapshot(Stage::Parse);
            let true_us = (1u64 << i) as f64 / 1_000.0;
            let expect_us = true_us * 33.0 / 32.0; // sub-bucket [2^i, 2^i + 2^(i-4)) midpoint
            assert_eq!(snap.p50_micros, expect_us, "p50 at 2^{i} ns");
            assert_eq!(snap.p99_micros, expect_us, "p99 at 2^{i} ns");
            assert!(snap.p50_micros >= true_us, "midpoint never under-reports");
            assert!(snap.p50_micros <= true_us * (1.0 + RELATIVE_ERROR));
        }
    }

    #[test]
    fn top_bucket_quantile_reports_its_midpoint() {
        let s = StageStats::new();
        s.record(u64::MAX, 0); // clamped into the last sketch bucket
        let snap = s.snapshot(Stage::Fetch);
        // Top bucket is [31·2^59, 2^64): midpoint 31.5·2^59 ns.
        assert_eq!(snap.p99_micros, 31.5 * (1u64 << 59) as f64 / 1_000.0);
        let err = (snap.p99_micros - u64::MAX as f64 / 1_000.0).abs() / (u64::MAX as f64 / 1_000.0);
        assert!(err <= RELATIVE_ERROR);
    }

    #[test]
    fn recorder_with_tracer_feeds_both_aggregate_and_timeline() {
        let rec = Recorder::with_tracer(16);
        assert!(rec.tracing());
        rec.span(Span {
            trace: 3,
            stage: Stage::Parse,
            start_ns: 10,
            duration_ns: 5_000,
            bytes: 256,
            worker: 1,
            outcome: SpanOutcome::Ok,
            detail: None,
        });
        rec.count_eviction();
        assert_eq!(rec.evictions(), 1);
        let report = rec.finish(1, 1);
        assert_eq!(report.stages[Stage::Parse.index()].calls, 1);
        assert_eq!(report.bytes, 256);
        let timeline = rec.timeline().expect("tracing enabled");
        assert_eq!(timeline.events.len(), 1);
        assert_eq!(timeline.events[0].trace, 3);
        // The untraced recorder spends nothing and yields no timeline.
        let plain = Recorder::new();
        assert!(!plain.tracing());
        assert!(plain.timeline().is_none());
    }

    #[test]
    fn recorder_exports_stage_families_and_registry_sorted_by_name() {
        let rec = Recorder::new().with_pipeline_metrics(Arc::new(PipelineMetrics::new(2)));
        rec.record_nanos(Stage::Parse, 1_000, 64);
        rec.span(Span {
            trace: 1,
            stage: Stage::Categorize,
            start_ns: 0,
            duration_ns: 2_000,
            bytes: 0,
            worker: 1,
            outcome: SpanOutcome::Ok,
            detail: None,
        });
        let metrics = rec.pipeline_metrics().expect("metrics attached");
        metrics.count_eviction("io-error");
        assert_eq!(metrics.worker_busy(1).map(Counter::get), Some(2_000), "span fed lane 1");
        let snap = rec.export_metrics();
        let names: Vec<&str> = snap.families.iter().map(|f| f.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted, "families are sorted by name");
        assert!(names.contains(&"mosaic.stage.latency_ns"));
        assert!(names.contains(&"mosaic.pipeline.evictions"));
        let latency = snap
            .families
            .iter()
            .find(|f| f.name == "mosaic.stage.latency_ns")
            .expect("stage latency family");
        assert_eq!(latency.kind, MetricKind::Summary);
        let parse = latency
            .samples
            .iter()
            .find(|s| s.labels.iter().any(|(_, v)| v == "parse"))
            .expect("parse sample");
        assert_eq!(parse.count, 1);
        assert_eq!(parse.value, 1_000.0);
        // Without metrics attached, export still carries the stage families.
        let plain = Recorder::new();
        assert!(plain.pipeline_metrics().is_none());
        assert_eq!(plain.export_metrics().families.len(), 4);
        // Identical recorded workloads export identical bytes.
        assert_eq!(rec.export_metrics().to_openmetrics(), rec.export_metrics().to_openmetrics());
    }

    #[test]
    fn quantiles_rank_correctly() {
        let s = StageStats::new();
        // 9 fast calls (~1 µs) and 1 slow (~1 ms): p50 fast, p99 slow.
        for _ in 0..9 {
            s.record(1_000, 0);
        }
        s.record(1_000_000, 0);
        let snap = s.snapshot(Stage::Merge);
        assert!(snap.p50_micros < 10.0, "p50 {}", snap.p50_micros);
        assert!(snap.p99_micros > 100.0, "p99 {}", snap.p99_micros);
    }
}
