//! # mosaic-obs
//!
//! Per-stage observability for the MOSAIC pipeline: lock-free counters,
//! log₂ timing histograms and throughput accounting, recorded from worker
//! threads with relaxed atomics and snapshotted into a serializable
//! [`MetricsReport`] when a run finishes.
//!
//! The paper's §IV-E performance claims (and every later optimisation PR)
//! need per-stage evidence, not a single wall-clock number: this crate is
//! the substrate. A [`Recorder`] is shared by all workers; each records
//! `(stage, duration, bytes)` triples as it processes traces. Recording is
//! wait-free — one `fetch_add` per field — so the instrumentation does not
//! perturb the throughput it measures.
//!
//! ```
//! use mosaic_obs::{Recorder, Stage};
//! use std::time::Duration;
//!
//! let rec = Recorder::new();
//! rec.record(Stage::Parse, Duration::from_micros(250), 4096);
//! rec.record(Stage::Categorize, Duration::from_micros(900), 0);
//! let report = rec.finish(1, 1);
//! assert_eq!(report.traces, 1);
//! assert_eq!(report.stages[Stage::Parse.index()].calls, 1);
//! assert!(report.render_table().contains("parse"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod progress;
pub mod trace;

pub use progress::ProgressLine;
pub use trace::{
    Exemplar, Span, SpanEvent, SpanOutcome, StageExemplars, TraceTimeline, Tracer,
    EXEMPLARS_PER_STAGE,
};

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A [`Duration`] as saturating nanoseconds — the span/histogram currency.
pub fn nanos_of(elapsed: Duration) -> u64 {
    u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX)
}

/// Number of log₂ histogram buckets: bucket `i` counts durations in
/// `[2^i, 2^(i+1))` nanoseconds, so 40 buckets span 1 ns to ~18 minutes.
pub const N_BUCKETS: usize = 40;

/// The pipeline stages instrumented by the executor, in processing order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Stage {
    /// Reading raw input from the source (disk, memory, generator).
    Fetch,
    /// Decoding MDF bytes into a trace log.
    Parse,
    /// Validity checking and per-record sanitization.
    Validate,
    /// Merging raw operations (rank + gap passes) inside categorization.
    Merge,
    /// The three characterizations proper (merging excluded).
    Categorize,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 5] =
        [Stage::Fetch, Stage::Parse, Stage::Validate, Stage::Merge, Stage::Categorize];

    /// Stable lowercase name (also the JSON spelling).
    pub fn name(self) -> &'static str {
        match self {
            Stage::Fetch => "fetch",
            Stage::Parse => "parse",
            Stage::Validate => "validate",
            Stage::Merge => "merge",
            Stage::Categorize => "categorize",
        }
    }

    /// Position in [`Stage::ALL`] (and in [`MetricsReport::stages`]).
    pub fn index(self) -> usize {
        self as usize
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Lock-free accumulator for one stage: call count, total/max nanoseconds,
/// bytes moved and a log₂ latency histogram. All fields use relaxed atomics
/// — the counts are telemetry, not synchronization points.
#[derive(Debug)]
pub struct StageStats {
    calls: AtomicU64,
    nanos: AtomicU64,
    max_nanos: AtomicU64,
    bytes: AtomicU64,
    buckets: [AtomicU64; N_BUCKETS],
}

impl Default for StageStats {
    fn default() -> Self {
        StageStats {
            calls: AtomicU64::new(0),
            nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Histogram bucket for a duration: `floor(log2(nanos))`, clamped.
fn bucket_of(nanos: u64) -> usize {
    if nanos == 0 {
        0
    } else {
        ((63 - nanos.leading_zeros()) as usize).min(N_BUCKETS - 1)
    }
}

impl StageStats {
    /// Fresh, zeroed stats.
    pub fn new() -> StageStats {
        StageStats::default()
    }

    /// Record one timed call. Wait-free.
    pub fn record(&self, nanos: u64, bytes: u64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
        if bytes > 0 {
            self.bytes.fetch_add(bytes, Ordering::Relaxed);
        }
        // lint: allow(panic, "bucket_of() clamps to N_BUCKETS - 1 == buckets.len() - 1")
        self.buckets[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
    }

    /// Bytes recorded so far.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Calls recorded so far.
    pub fn calls(&self) -> u64 {
        self.calls.load(Ordering::Relaxed)
    }

    /// Total nanoseconds recorded so far.
    pub fn nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }

    /// Consistent-enough snapshot for reporting (individual fields are read
    /// relaxed; exactness across fields is not required of telemetry).
    pub fn snapshot(&self, stage: Stage) -> StageSnapshot {
        let calls = self.calls.load(Ordering::Relaxed);
        let nanos = self.nanos.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let quantile = |q: f64| -> f64 {
            let total: u64 = buckets.iter().sum();
            if total == 0 {
                return 0.0;
            }
            let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
            let mut seen = 0u64;
            for (i, &count) in buckets.iter().enumerate() {
                seen += count;
                if seen >= rank {
                    // Geometric midpoint of bucket [2^i, 2^(i+1)).
                    return 1.5 * (1u64 << i) as f64 / 1_000.0;
                }
            }
            1.5 * (1u64 << (N_BUCKETS - 1)) as f64 / 1_000.0
        };
        StageSnapshot {
            stage: stage.name().to_owned(),
            calls,
            total_seconds: nanos as f64 / 1e9,
            mean_micros: if calls == 0 { 0.0 } else { nanos as f64 / calls as f64 / 1_000.0 },
            p50_micros: quantile(0.50),
            p99_micros: quantile(0.99),
            max_micros: self.max_nanos.load(Ordering::Relaxed) as f64 / 1_000.0,
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }
}

/// Immutable, serializable view of one stage's accumulated statistics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageSnapshot {
    /// Stage name (see [`Stage::name`]).
    pub stage: String,
    /// Number of recorded calls.
    pub calls: u64,
    /// Total time spent in the stage, summed over all workers.
    pub total_seconds: f64,
    /// Mean call duration in microseconds.
    pub mean_micros: f64,
    /// Median call duration in microseconds (log₂-bucket estimate).
    pub p50_micros: f64,
    /// 99th-percentile call duration in microseconds (log₂-bucket estimate).
    pub p99_micros: f64,
    /// Slowest observed call in microseconds.
    pub max_micros: f64,
    /// Bytes processed by the stage (0 when not byte-oriented).
    pub bytes: u64,
}

/// The merged end-of-run metrics: wall-clock, throughput and one
/// [`StageSnapshot`] per stage, in pipeline order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    /// Wall-clock seconds from recorder construction to [`Recorder::finish`].
    pub wall_seconds: f64,
    /// Worker threads the run was configured with.
    pub workers: usize,
    /// Traces presented to the pipeline.
    pub traces: u64,
    /// End-to-end throughput: `traces / wall_seconds`.
    pub traces_per_second: f64,
    /// Raw trace bytes decoded (the parse stage's byte count).
    pub bytes: u64,
    /// Byte throughput: `bytes / wall_seconds`.
    pub bytes_per_second: f64,
    /// Per-stage statistics, ordered as [`Stage::ALL`].
    pub stages: Vec<StageSnapshot>,
}

impl MetricsReport {
    /// Render as an aligned text table (CLI / bench output).
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<12} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            "stage", "calls", "total s", "mean µs", "p50 µs", "p99 µs", "max µs", "MiB"
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "{:<12} {:>10} {:>10.3} {:>10.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
                s.stage,
                s.calls,
                s.total_seconds,
                s.mean_micros,
                s.p50_micros,
                s.p99_micros,
                s.max_micros,
                s.bytes as f64 / (1u64 << 20) as f64,
            );
        }
        let _ = writeln!(
            out,
            "wall {:.3} s · {} workers · {:.0} traces/s · {:.1} MiB/s",
            self.wall_seconds,
            self.workers,
            self.traces_per_second,
            self.bytes_per_second / (1u64 << 20) as f64,
        );
        out
    }

    /// Render as Markdown table rows (for `report_md`).
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| stage | calls | total s | mean µs | p50 µs | p99 µs |");
        let _ = writeln!(out, "|---|---:|---:|---:|---:|---:|");
        for s in &self.stages {
            let _ = writeln!(
                out,
                "| `{}` | {} | {:.3} | {:.1} | {:.1} | {:.1} |",
                s.stage, s.calls, s.total_seconds, s.mean_micros, s.p50_micros, s.p99_micros
            );
        }
        let _ = writeln!(
            out,
            "\nWall-clock **{:.3} s** on {} workers — **{:.0} traces/s**, {:.1} MiB/s of raw trace bytes.",
            self.wall_seconds,
            self.workers,
            self.traces_per_second,
            self.bytes_per_second / (1u64 << 20) as f64,
        );
        out
    }
}

/// The shared, thread-safe metrics sink: one [`StageStats`] per stage, a
/// live eviction counter, the run's start instant, and (optionally) a
/// structured [`Tracer`]. Workers record through `&Recorder`; the executor
/// snapshots with [`Recorder::finish`] once all workers are done.
#[derive(Debug)]
pub struct Recorder {
    stages: [StageStats; Stage::ALL.len()],
    evictions: AtomicU64,
    tracer: Option<Tracer>,
    started: Instant,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Recorder {
    /// Start a recorder; wall-clock measurement begins now. Tracing is off:
    /// span recording degenerates to the aggregate counters, with zero
    /// extra allocation on the hot path.
    pub fn new() -> Recorder {
        Recorder {
            stages: std::array::from_fn(|_| StageStats::new()),
            evictions: AtomicU64::new(0),
            // lint: allow(nondeterminism, "the Recorder exists to measure wall-clock; its metrics are excluded from ResultSnapshot digests")
            started: Instant::now(),
            tracer: None,
        }
    }

    /// Start a recorder with structured span tracing enabled: a [`Tracer`]
    /// ring holding up to `capacity` spans, snapshotted by
    /// [`Recorder::timeline`].
    pub fn with_tracer(capacity: usize) -> Recorder {
        Recorder { tracer: Some(Tracer::new(capacity)), ..Recorder::new() }
    }

    /// `true` when structured span tracing is enabled.
    pub fn tracing(&self) -> bool {
        self.tracer.is_some()
    }

    /// The structured tracer, when tracing is enabled.
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_ref()
    }

    /// Nanoseconds since the recorder's epoch — the span time base.
    pub fn now_ns(&self) -> u64 {
        // lint: allow(nondeterminism, "span start offsets are telemetry; timelines are excluded from ResultSnapshot digests")
        nanos_of(self.started.elapsed())
    }

    /// Record one span: the aggregate counters always, the structured
    /// tracer when enabled. This is the executor's per-stage call site —
    /// one method, so tracing on/off cannot diverge in what is counted.
    pub fn span(&self, span: Span<'_>) {
        self.record_nanos(span.stage, span.duration_ns, span.bytes);
        if let Some(tracer) = &self.tracer {
            tracer.record(span);
        }
    }

    /// Count one funnel eviction (live telemetry for progress lines; the
    /// authoritative typed accounting lives in the pipeline's funnel).
    pub fn count_eviction(&self) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
    }

    /// Evictions counted so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Snapshot the structured timeline, when tracing is enabled.
    pub fn timeline(&self) -> Option<TraceTimeline> {
        self.tracer.as_ref().map(Tracer::snapshot)
    }

    /// Record one timed call of `stage`.
    pub fn record(&self, stage: Stage, elapsed: Duration, bytes: u64) {
        self.record_nanos(stage, nanos_of(elapsed), bytes);
    }

    /// Record with a raw nanosecond count (for durations measured elsewhere).
    pub fn record_nanos(&self, stage: Stage, nanos: u64, bytes: u64) {
        // lint: allow(panic, "enum-derived index: Stage::index() < Stage::ALL.len() by construction")
        self.stages[stage.index()].record(nanos, bytes);
    }

    /// Time a closure and record it.
    pub fn time<T>(&self, stage: Stage, bytes: u64, f: impl FnOnce() -> T) -> T {
        // lint: allow(nondeterminism, "the Recorder exists to measure wall-clock; its metrics are excluded from ResultSnapshot digests")
        let t = Instant::now();
        let out = f();
        // lint: allow(nondeterminism, "stage timing telemetry; metrics are excluded from ResultSnapshot digests")
        self.record(stage, t.elapsed(), bytes);
        out
    }

    /// Access one stage's live stats.
    pub fn stage(&self, stage: Stage) -> &StageStats {
        // lint: allow(panic, "enum-derived index: Stage::index() < Stage::ALL.len() by construction")
        &self.stages[stage.index()]
    }

    /// Snapshot everything into a [`MetricsReport`]. `traces` is the number
    /// of inputs presented; `workers` the configured thread count.
    pub fn finish(&self, traces: u64, workers: usize) -> MetricsReport {
        // lint: allow(nondeterminism, "wall-clock summary telemetry; metrics are excluded from ResultSnapshot digests")
        let wall = self.started.elapsed().as_secs_f64().max(1e-9);
        let stages: Vec<StageSnapshot> =
            Stage::ALL.iter().map(|&s| self.stage(s).snapshot(s)).collect();
        let bytes = self.stage(Stage::Parse).bytes();
        MetricsReport {
            wall_seconds: wall,
            workers: workers.max(1),
            traces,
            traces_per_second: traces as f64 / wall,
            bytes,
            bytes_per_second: bytes as f64 / wall,
            stages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(1023), 9);
        assert_eq!(bucket_of(1024), 10);
        assert_eq!(bucket_of(u64::MAX), N_BUCKETS - 1);
    }

    #[test]
    fn stage_order_and_names() {
        assert_eq!(Stage::ALL.len(), 5);
        assert_eq!(Stage::Fetch.index(), 0);
        assert_eq!(Stage::Categorize.index(), 4);
        assert_eq!(Stage::Merge.name(), "merge");
        assert_eq!(Stage::Parse.to_string(), "parse");
    }

    #[test]
    fn record_and_snapshot_aggregate() {
        let s = StageStats::new();
        s.record(1_000, 10);
        s.record(3_000, 20);
        s.record(2_000, 0);
        let snap = s.snapshot(Stage::Parse);
        assert_eq!(snap.calls, 3);
        assert_eq!(snap.bytes, 30);
        assert!((snap.total_seconds - 6e-6).abs() < 1e-12);
        assert!((snap.mean_micros - 2.0).abs() < 1e-9);
        assert!((snap.max_micros - 3.0).abs() < 1e-9);
        // p50 falls in the bucket holding 1000–2047 ns.
        assert!(snap.p50_micros > 0.5 && snap.p50_micros < 4.0, "{}", snap.p50_micros);
    }

    #[test]
    fn empty_stats_quantiles_are_zero() {
        let snap = StageStats::new().snapshot(Stage::Fetch);
        assert_eq!(snap.calls, 0);
        assert_eq!(snap.p50_micros, 0.0);
        assert_eq!(snap.p99_micros, 0.0);
        assert_eq!(snap.mean_micros, 0.0);
    }

    #[test]
    fn recorder_merges_across_threads() {
        let rec = Recorder::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        rec.record(Stage::Parse, Duration::from_micros(5), 100);
                        rec.record(Stage::Validate, Duration::from_micros(2), 0);
                    }
                });
            }
        });
        let report = rec.finish(400, 4);
        assert_eq!(report.stages[Stage::Parse.index()].calls, 400);
        assert_eq!(report.stages[Stage::Validate.index()].calls, 400);
        assert_eq!(report.bytes, 40_000);
        assert_eq!(report.traces, 400);
        assert!(report.traces_per_second > 0.0);
    }

    #[test]
    fn report_serializes_and_renders() {
        let rec = Recorder::new();
        rec.record(Stage::Fetch, Duration::from_micros(1), 64);
        let report = rec.finish(1, 2);
        let json = serde_json::to_string(&report).unwrap();
        let back: MetricsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        let table = report.render_table();
        for name in ["fetch", "parse", "validate", "merge", "categorize", "workers"] {
            assert!(table.contains(name), "missing {name} in\n{table}");
        }
        let md = report.render_markdown();
        assert!(md.contains("| `fetch` |"));
        assert!(md.contains("traces/s"));
    }

    #[test]
    fn quantiles_interpolate_to_the_bucket_midpoint_at_boundaries() {
        // A duration of exactly 2^i ns lands on a bucket's *lower* edge.
        // Reporting that edge would bias p50/p99 low by up to 2×; the
        // estimate must be the midpoint of [2^i, 2^(i+1)) instead, which
        // never under-reports the true value.
        for i in [4u32, 10, 17, 25] {
            let s = StageStats::new();
            for _ in 0..100 {
                s.record(1u64 << i, 0);
            }
            let snap = s.snapshot(Stage::Parse);
            let lower_edge_us = (1u64 << i) as f64 / 1_000.0;
            let midpoint_us = 1.5 * lower_edge_us;
            assert_eq!(snap.p50_micros, midpoint_us, "p50 at 2^{i} ns");
            assert_eq!(snap.p99_micros, midpoint_us, "p99 at 2^{i} ns");
            // Midpoint reporting keeps the estimate within the bucket:
            // never below the true duration, never 2× above it.
            assert!(snap.p50_micros >= lower_edge_us);
            assert!(snap.p50_micros < 2.0 * lower_edge_us);
        }
    }

    #[test]
    fn top_bucket_quantile_reports_its_midpoint() {
        let s = StageStats::new();
        s.record(u64::MAX, 0); // clamped into the last bucket
        let snap = s.snapshot(Stage::Fetch);
        assert_eq!(snap.p99_micros, 1.5 * (1u64 << (N_BUCKETS - 1)) as f64 / 1_000.0);
    }

    #[test]
    fn recorder_with_tracer_feeds_both_aggregate_and_timeline() {
        let rec = Recorder::with_tracer(16);
        assert!(rec.tracing());
        rec.span(Span {
            trace: 3,
            stage: Stage::Parse,
            start_ns: 10,
            duration_ns: 5_000,
            bytes: 256,
            worker: 1,
            outcome: SpanOutcome::Ok,
            detail: None,
        });
        rec.count_eviction();
        assert_eq!(rec.evictions(), 1);
        let report = rec.finish(1, 1);
        assert_eq!(report.stages[Stage::Parse.index()].calls, 1);
        assert_eq!(report.bytes, 256);
        let timeline = rec.timeline().expect("tracing enabled");
        assert_eq!(timeline.events.len(), 1);
        assert_eq!(timeline.events[0].trace, 3);
        // The untraced recorder spends nothing and yields no timeline.
        let plain = Recorder::new();
        assert!(!plain.tracing());
        assert!(plain.timeline().is_none());
    }

    #[test]
    fn quantiles_rank_correctly() {
        let s = StageStats::new();
        // 9 fast calls (~1 µs) and 1 slow (~1 ms): p50 fast, p99 slow.
        for _ in 0..9 {
            s.record(1_000, 0);
        }
        s.record(1_000_000, 0);
        let snap = s.snapshot(Stage::Merge);
        assert!(snap.p50_micros < 10.0, "p50 {}", snap.p50_micros);
        assert!(snap.p99_micros > 100.0, "p99 {}", snap.p99_micros);
    }
}
