//! Property-based tests for the quantile sketch: the advertised
//! relative-error bound and the merge law must hold for *any* sample
//! stream, not just the octave-edge fixtures in the unit tests.

use mosaic_obs::{QuantileSketch, RELATIVE_ERROR};
use proptest::prelude::*;

/// Sample streams biased toward the places the sketch can get wrong:
/// the exact region below 16, powers of two sitting on bucket edges,
/// heavy duplicates, and the extremes 0 / 1 / `u64::MAX`.
fn arb_samples() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec((0u8..8, any::<u64>()), 1..250).prop_map(|pairs| {
        pairs
            .into_iter()
            .map(|(sel, raw)| match sel {
                0 => 0,
                1 => 1,
                2 => u64::MAX,
                3 => 1_000_000,          // heavy duplicates: ~1/8 of every stream
                4 => raw % 16,           // exact region
                5 => 1u64 << (raw % 64), // bucket lower edges
                _ => raw,
            })
            .collect()
    })
}

/// The exact quantile under the sketch's own rank definition:
/// `rank = ceil(q·n)` clamped to `1..=n`, value = `sorted[rank - 1]`.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn quantiles_stay_within_the_advertised_relative_error(
        samples in arb_samples(),
        q_raw in 0.0f64..1.0,
    ) {
        let sketch = QuantileSketch::new();
        for &v in &samples {
            sketch.record(v);
        }
        let mut sorted = samples.clone();
        sorted.sort_unstable();

        // The sampled q plus the quantiles the registry actually exports.
        for q in [q_raw, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let est = sketch.quantile(q);
            if exact < 16 {
                // Values below 16 get a bucket each: the estimate is exact.
                prop_assert_eq!(est, exact as f64, "q={} exact={}", q, exact);
            } else {
                let err = (est - exact as f64).abs() / exact as f64;
                prop_assert!(
                    err <= RELATIVE_ERROR,
                    "q={} exact={} est={} rel_err={} > {}",
                    q, exact, est, err, RELATIVE_ERROR
                );
            }
        }
    }

    #[test]
    fn merge_equals_feeding_the_concatenated_stream(
        xs in arb_samples(),
        ys in arb_samples(),
    ) {
        let a = QuantileSketch::new();
        let b = QuantileSketch::new();
        let both = QuantileSketch::new();
        for &v in &xs {
            a.record(v);
            both.record(v);
        }
        for &v in &ys {
            b.record(v);
            both.record(v);
        }
        a.merge_from(&b);
        prop_assert_eq!(a.snapshot(), both.snapshot());
        prop_assert_eq!(a.count(), (xs.len() + ys.len()) as u64);
    }

    #[test]
    fn quantile_estimates_are_monotone_in_q(samples in arb_samples()) {
        let sketch = QuantileSketch::new();
        for &v in &samples {
            sketch.record(v);
        }
        let mut prev = 0.0f64;
        for i in 0..=20 {
            let q = f64::from(i) / 20.0;
            let est = sketch.quantile(q.max(0.01));
            prop_assert!(est >= prev, "quantile({}) = {} < {}", q, est, prev);
            prev = est;
        }
    }
}
