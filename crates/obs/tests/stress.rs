//! Multi-threaded stress test for the lock-free observability surface:
//! N real writer threads hammering the [`Tracer`] seqlock ring while a
//! concurrent reader snapshots it, plus an exactness check on the
//! per-stage exemplar [`Reservoir`] under the same contention.
//!
//! Every span carries a self-describing payload (`duration = trace + 1`,
//! `bytes = trace + 2`, `start = trace + 3`, `worker = trace / TRACE_BASE`)
//! so a torn mix of two writers' fields — the exact bug class the L10
//! seqlock bracket exists to prevent — is detectable as an internal
//! inconsistency, not just a statistical anomaly.

use mosaic_obs::trace::{Span, SpanOutcome, TraceTimeline, Tracer, EXEMPLARS_PER_STAGE};
use mosaic_obs::Stage;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};

/// Writer threads, spans per writer, and the (deliberately small, so the
/// ring wraps dozens of times) slot capacity.
const WRITERS: u64 = 4;
const SPANS_PER_WRITER: u64 = 3_000;
const CAPACITY: usize = 256;

/// Trace-id stride per writer; must exceed [`SPANS_PER_WRITER`] so ids
/// never collide across writers.
const TRACE_BASE: u64 = 10_000;

fn span_for(trace: u64, worker: u64) -> Span<'static> {
    Span {
        trace,
        stage: Stage::Parse,
        start_ns: trace + 3,
        duration_ns: trace + 1,
        bytes: trace + 2,
        worker,
        outcome: SpanOutcome::Ok,
        detail: None,
    }
}

/// Invariants that must hold for *every* snapshot, including ones taken
/// mid-write: exact torn accounting, no ghost or duplicated spans, and
/// internally consistent payloads.
fn check_snapshot(snap: &TraceTimeline) {
    let filled = snap.recorded.min(CAPACITY as u64);
    assert_eq!(
        snap.events.len() as u64 + snap.torn,
        filled,
        "every filled slot is either a whole event or counted torn"
    );
    assert_eq!(snap.dropped, snap.recorded.saturating_sub(CAPACITY as u64));
    let mut traces = BTreeSet::new();
    for e in &snap.events {
        assert!(traces.insert(e.trace), "trace {} surfaced twice in one snapshot", e.trace);
        assert_eq!(e.duration_ns, e.trace + 1, "torn payload: duration does not match trace");
        assert_eq!(e.bytes, e.trace + 2, "torn payload: bytes does not match trace");
        assert_eq!(e.start_ns, e.trace + 3, "torn payload: start does not match trace");
        assert_eq!(e.worker, e.trace / TRACE_BASE, "torn payload: worker does not match trace");
        assert_eq!(e.stage, Stage::Parse);
        let writer = e.trace / TRACE_BASE;
        let seq = e.trace % TRACE_BASE;
        assert!(writer < WRITERS && seq < SPANS_PER_WRITER, "ghost trace id {}", e.trace);
    }
    for per_stage in &snap.exemplars {
        let slowest = &per_stage.slowest;
        assert!(slowest.len() <= EXEMPLARS_PER_STAGE);
        for pair in slowest.windows(2) {
            assert!(
                pair[0].duration_ns >= pair[1].duration_ns,
                "reservoir must stay duration-descending"
            );
        }
        if per_stage.stage != Stage::Parse {
            assert!(slowest.is_empty(), "no spans were offered to {}", per_stage.stage.name());
        }
    }
}

#[test]
fn concurrent_writers_and_reader_never_corrupt_the_ring() {
    let tracer = Tracer::new(CAPACITY);
    let writers_done = AtomicBool::new(false);
    let snapshots_taken = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..WRITERS)
            .map(|w| {
                let tracer = &tracer;
                scope.spawn(move || {
                    for i in 0..SPANS_PER_WRITER {
                        tracer.record(span_for(w * TRACE_BASE + i, w));
                    }
                })
            })
            .collect();
        let reader = scope.spawn(|| {
            let mut taken = 0u64;
            while !writers_done.load(Ordering::Acquire) {
                check_snapshot(&tracer.snapshot());
                taken += 1;
            }
            taken
        });
        for h in handles {
            h.join().expect("writer thread panicked");
        }
        writers_done.store(true, Ordering::Release);
        reader.join().expect("reader thread panicked")
    });
    assert!(snapshots_taken > 0, "the reader must have observed the ring under contention");

    // Quiescent accounting: exact recorded/dropped totals, zero torn
    // slots, a full ring, and every surviving span whole.
    let total = WRITERS * SPANS_PER_WRITER;
    let finals = tracer.snapshot();
    check_snapshot(&finals);
    assert_eq!(finals.recorded, total);
    assert_eq!(finals.dropped, total - CAPACITY as u64);
    assert_eq!(finals.torn, 0, "no slot may stay torn once writers have joined");
    assert_eq!(finals.events.len(), CAPACITY);
}

#[test]
fn reservoir_top_k_is_exact_under_contention() {
    // The floor fast path reads `Relaxed`; a stale floor is always <= the
    // current one, so it can only false-*accept* (harmless) — never
    // false-reject. The final top-K must therefore be *exactly* the K
    // slowest spans ever offered, even with every writer contending.
    let tracer = Tracer::new(CAPACITY);
    std::thread::scope(|scope| {
        for w in 0..WRITERS {
            let tracer = &tracer;
            scope.spawn(move || {
                for i in 0..SPANS_PER_WRITER {
                    tracer.record(span_for(w * TRACE_BASE + i, w));
                }
            });
        }
    });
    let snap = tracer.snapshot();
    let parse = snap
        .exemplars
        .iter()
        .find(|s| s.stage == Stage::Parse)
        .expect("parse stage exemplars present");
    // `duration = trace + 1`, so the true top-K are the K largest trace
    // ids: the tail of the highest-stride writer.
    let top_writer = WRITERS - 1;
    let expected: Vec<u64> = (0..EXEMPLARS_PER_STAGE as u64)
        .map(|k| top_writer * TRACE_BASE + (SPANS_PER_WRITER - 1 - k) + 1)
        .collect();
    let got: Vec<u64> = parse.slowest.iter().map(|e| e.duration_ns).collect();
    assert_eq!(got, expected, "the reservoir lost or invented a slow span");
    for e in &parse.slowest {
        assert_eq!(e.duration_ns, e.trace + 1);
        assert_eq!(e.outcome, "ok");
    }
}
