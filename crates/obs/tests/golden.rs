//! Golden test: the OpenMetrics text exposition of a deterministically
//! populated recorder must match the committed fixture byte for byte.
//!
//! `Recorder::export_metrics` deliberately excludes wall-clock, so the
//! same recorded workload always exports the same bytes; any drift here
//! means the exposition format (ordering, mangling, type lines) changed
//! and downstream scrapers would see it too. To re-bless after an
//! intentional format change:
//!
//! ```sh
//! BLESS_GOLDEN=1 cargo test -p mosaic-obs --test golden
//! ```

use mosaic_obs::{PipelineMetrics, Recorder, Stage};
use std::path::PathBuf;
use std::sync::Arc;

fn golden_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests").join("golden").join("openmetrics.txt")
}

/// A fixed workload touching every family the pipeline exports: all five
/// stages, both worker lanes, every standard gauge, and two eviction
/// reasons (so label ordering inside a family is exercised).
fn deterministic_recorder() -> Recorder {
    let metrics = Arc::new(PipelineMetrics::new(2));
    metrics.inflight().add(3);
    metrics.arena_resident().set(4_096);
    metrics.arena_peak().set_max(81_920);
    metrics.dedup_apps().set(7);
    metrics.count_eviction("truncated");
    metrics.count_eviction("truncated");
    metrics.count_eviction("io_error");
    if let Some(w) = metrics.worker_busy(0) {
        w.add(1_000);
    }
    if let Some(w) = metrics.worker_busy(1) {
        w.add(2_500);
    }
    let recorder = Recorder::new().with_pipeline_metrics(metrics);
    recorder.record_nanos(Stage::Fetch, 100, 64);
    recorder.record_nanos(Stage::Fetch, 250, 64);
    recorder.record_nanos(Stage::Parse, 3_000, 512);
    recorder.record_nanos(Stage::Parse, 40_000, 2_048);
    recorder.record_nanos(Stage::Validate, 450, 0);
    recorder.record_nanos(Stage::Merge, 120, 0);
    recorder.record_nanos(Stage::Categorize, 50_000, 0);
    recorder
}

#[test]
fn openmetrics_exposition_matches_the_committed_golden() {
    let text = deterministic_recorder().export_metrics().to_openmetrics();
    let path = golden_path();
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::write(&path, &text).unwrap_or_else(|e| panic!("blessing {path:?}: {e}"));
        return;
    }
    let committed = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("cannot read {path:?}: {e}\nbless it: BLESS_GOLDEN=1 cargo test -p mosaic-obs --test golden")
    });
    assert_eq!(
        text, committed,
        "OpenMetrics exposition drifted from the committed golden; if intentional, \
         re-bless with BLESS_GOLDEN=1 cargo test -p mosaic-obs --test golden"
    );
}

#[test]
fn exposition_is_deterministic_across_identical_workloads() {
    let a = deterministic_recorder().export_metrics();
    let b = deterministic_recorder().export_metrics();
    assert_eq!(a.to_openmetrics(), b.to_openmetrics());
    assert_eq!(a.to_json(), b.to_json());
}
