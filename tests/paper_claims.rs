//! The paper's §IV-D correlation claims, verified on the synthetic year
//! model:
//!
//! * "The large majority of applications (95 %) having no significant read
//!   operations also have no significant write operation."
//! * "66 % of applications reading on start write on end."
//! * "Almost all traces with periodic writes (96 %) spend less than 25 % of
//!   the time writing."
//! * Metadata-dense applications skew toward read-on-start / write-on-end.

use mosaic_core::category::{Category, MetadataLabel, OpKindTag, TemporalityLabel};
use mosaic_pipeline::executor::{process, PipelineConfig, PipelineResult};
use mosaic_pipeline::source::{ClosureSource, TraceInput};
use mosaic_synth::{Dataset, DatasetConfig, Payload};
use std::collections::BTreeSet;

fn run_pipeline(n: usize, seed: u64) -> PipelineResult {
    let ds = Dataset::new(DatasetConfig { n_traces: n, seed, ..Default::default() });
    let source = ClosureSource::new(ds.len(), move |i| match ds.generate(i).payload {
        Payload::Log(log) => TraceInput::log(log),
        Payload::Bytes(bytes) => TraceInput::bytes(bytes),
    });
    process(&source, &PipelineConfig::default())
}

fn cat(kind: OpKindTag, label: TemporalityLabel) -> Category {
    Category::Temporality { kind, label }
}

fn conditional(sets: &[BTreeSet<Category>], given: Category, then: Category) -> f64 {
    let with: Vec<_> = sets.iter().filter(|s| s.contains(&given)).collect();
    assert!(!with.is_empty(), "no traces with {given:?}");
    with.iter().filter(|s| s.contains(&then)).count() as f64 / with.len() as f64
}

#[test]
fn quiet_readers_are_quiet_writers() {
    let result = run_pipeline(5000, 301);
    let sets = result.single_run_sets();
    let p = conditional(
        &sets,
        cat(OpKindTag::Read, TemporalityLabel::Insignificant),
        cat(OpKindTag::Write, TemporalityLabel::Insignificant),
    );
    // Paper: 95 %.
    assert!(p > 0.85, "P(write insig | read insig) = {p}");
}

#[test]
fn read_compute_write_motif() {
    let result = run_pipeline(5000, 302);
    let sets = result.single_run_sets();
    let p = conditional(
        &sets,
        cat(OpKindTag::Read, TemporalityLabel::OnStart),
        cat(OpKindTag::Write, TemporalityLabel::OnEnd),
    );
    // Paper: 66 %. Accept the band around it.
    assert!((0.35..0.9).contains(&p), "P(write_on_end | read_on_start) = {p}");
}

#[test]
fn periodic_writes_are_low_busy() {
    let result = run_pipeline(6000, 303);
    let sets = result.all_runs_sets();
    let p = conditional(
        &sets,
        Category::Periodic { kind: OpKindTag::Write },
        Category::PeriodicLowBusyTime { kind: OpKindTag::Write },
    );
    // Paper: 96 % of periodic writes spend < 25 % of time writing.
    assert!(p > 0.85, "P(low busy | periodic write) = {p}");
}

#[test]
fn jaccard_matrix_surfaces_the_motif() {
    let result = run_pipeline(4000, 304);
    let jaccard = result.jaccard_single_run();
    let j = jaccard
        .get(
            cat(OpKindTag::Read, TemporalityLabel::OnStart),
            cat(OpKindTag::Write, TemporalityLabel::OnEnd),
        )
        .expect("both categories present");
    // The motif must stand out in the Fig 5 heatmap.
    assert!(j > 0.2, "Jaccard(read_on_start, write_on_end) = {j}");
    // And the heatmap rendering must include it.
    let text = jaccard.render_text();
    assert!(text.contains("read_on_start"));
    assert!(text.contains("write_on_end"));
}

#[test]
fn metadata_dense_apps_read_on_start_or_write_on_end() {
    let result = run_pipeline(6000, 305);
    let sets = result.all_runs_sets();
    let spike = Category::Metadata(MetadataLabel::HighSpike);
    let with_spike: Vec<_> = sets.iter().filter(|s| s.contains(&spike)).collect();
    assert!(!with_spike.is_empty());
    let related = with_spike
        .iter()
        .filter(|s| {
            s.contains(&cat(OpKindTag::Read, TemporalityLabel::OnStart))
                || s.contains(&cat(OpKindTag::Write, TemporalityLabel::OnEnd))
                || s.contains(&cat(OpKindTag::Read, TemporalityLabel::Steady))
                || s.contains(&cat(OpKindTag::Write, TemporalityLabel::Steady))
        })
        .count() as f64
        / with_spike.len() as f64;
    // High-spike traces are overwhelmingly the significant-I/O apps.
    assert!(related > 0.7, "spiky traces with active I/O: {related}");
}

#[test]
fn periodic_magnitudes_span_minutes_to_hours() {
    // Table II: detected periodic write frequencies fluctuate between
    // minutes and hours.
    let result = run_pipeline(8000, 306);
    let minute = result.all_runs_counts().count(Category::PeriodicMagnitude {
        kind: OpKindTag::Write,
        magnitude: mosaic_core::category::PeriodMagnitude::Minute,
    });
    let hour = result.all_runs_counts().count(Category::PeriodicMagnitude {
        kind: OpKindTag::Write,
        magnitude: mosaic_core::category::PeriodMagnitude::Hour,
    });
    assert!(minute > 0, "no minute-scale periodic writes");
    assert!(hour > 0, "no hour-scale periodic writes");
}

#[test]
fn categorization_covers_nearly_all_traces() {
    // §III-A: "our categories describe 98 % of a year's worth of traces" —
    // every valid trace must receive at least the three axis labels.
    let result = run_pipeline(3000, 307);
    for outcome in &result.outcomes {
        assert!(
            outcome.report.categories.len() >= 2,
            "trace {} got only {:?}",
            outcome.index,
            outcome.report.names()
        );
    }
}
