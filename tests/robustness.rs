//! Robustness properties: parsers never panic on hostile input, and the
//! categorizer satisfies its algebraic invariants on arbitrary views.

use mosaic_core::category::{OpKindTag, TemporalityLabel};
use mosaic_core::merge::{merge_all, merge_concurrent};
use mosaic_core::{Categorizer, CategorizerConfig};
use mosaic_darshan::ops::{OpKind, Operation, OperationView};
use mosaic_darshan::{dxt, mdf, text};
use proptest::prelude::*;

// ---- parsers must reject, never panic --------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mdf_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..4096)) {
        let _ = mdf::from_bytes(&bytes);
    }

    #[test]
    fn mdx_parser_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..4096)) {
        let _ = dxt::from_bytes(&bytes);
    }

    #[test]
    fn text_parser_never_panics(input in "\\PC{0,2000}") {
        let _ = text::parse(&input);
    }

    #[test]
    fn mdf_parser_never_panics_on_mutated_valid_prefix(
        cut in 0usize..1000,
        junk in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        // A valid header followed by garbage exercises the structured
        // decoding paths rather than just the magic check.
        let log = mosaic_darshan::log::TraceLogBuilder::new(
            mosaic_darshan::job::JobHeader::new(1, 2, 3, 0, 100).with_exe("/bin/x"),
        )
        .finish();
        let mut bytes = mdf::to_bytes(&log);
        let cut = cut.min(bytes.len());
        bytes.truncate(cut);
        bytes.extend(junk);
        let _ = mdf::from_bytes(&bytes);
    }
}

// ---- merge invariants --------------------------------------------------

fn arb_ops() -> impl Strategy<Value = Vec<Operation>> {
    prop::collection::vec((0.0f64..10_000.0, 0.0f64..500.0, 0u64..1 << 32, 1u32..128), 0..120)
        .prop_map(|raw| {
            raw.into_iter()
                .map(|(start, len, bytes, ranks)| Operation {
                    kind: OpKind::Write,
                    start,
                    end: start + len,
                    bytes,
                    ranks,
                })
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn concurrent_merge_output_is_sorted_and_disjoint(ops in arb_ops()) {
        let merged = merge_concurrent(&ops);
        for w in merged.windows(2) {
            prop_assert!(w[0].start <= w[1].start);
            prop_assert!(w[0].end < w[1].start, "overlap survived: {w:?}");
        }
    }

    #[test]
    fn concurrent_merge_is_idempotent(ops in arb_ops()) {
        let once = merge_concurrent(&ops);
        let twice = merge_concurrent(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn merging_conserves_bytes_and_ranks(ops in arb_ops()) {
        let bytes: u64 = ops.iter().map(|o| o.bytes).sum();
        let ranks: u64 = ops.iter().map(|o| o.ranks as u64).sum();
        let merged = merge_all(&ops, 10_500.0, &CategorizerConfig::default());
        prop_assert_eq!(merged.iter().map(|o| o.bytes).sum::<u64>(), bytes);
        prop_assert_eq!(merged.iter().map(|o| o.ranks as u64).sum::<u64>(), ranks);
    }

    #[test]
    fn merging_preserves_time_hull(ops in arb_ops()) {
        prop_assume!(!ops.is_empty());
        let lo = ops.iter().map(|o| o.start).fold(f64::INFINITY, f64::min);
        let hi = ops.iter().map(|o| o.end).fold(0.0f64, f64::max);
        let merged = merge_all(&ops, 10_500.0, &CategorizerConfig::default());
        prop_assert!((merged.first().unwrap().start - lo).abs() < 1e-9);
        prop_assert!((merged.last().unwrap().end - hi).abs() < 1e-9);
    }
}

// ---- categorizer invariants ---------------------------------------------

fn arb_view() -> impl Strategy<Value = OperationView> {
    (
        100.0f64..100_000.0,
        1u32..2048,
        prop::collection::vec((0.0f64..1.0, 0.0f64..0.2, 0u64..1 << 34), 0..40),
        prop::collection::vec((0.0f64..1.0, 0.0f64..0.2, 0u64..1 << 34), 0..40),
    )
        .prop_map(|(runtime, nprocs, raw_reads, raw_writes)| {
            let mk = |kind: OpKind, raw: Vec<(f64, f64, u64)>| {
                let mut ops: Vec<Operation> = raw
                    .into_iter()
                    .map(|(s, l, bytes)| Operation {
                        kind,
                        start: s * runtime,
                        end: (s + l).min(1.0) * runtime,
                        bytes,
                        ranks: nprocs,
                    })
                    .collect();
                ops.sort_by(|a, b| a.start.total_cmp(&b.start));
                ops
            };
            OperationView {
                runtime,
                nprocs,
                reads: mk(OpKind::Read, raw_reads),
                writes: mk(OpKind::Write, raw_writes),
                meta: vec![],
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn categorizer_never_panics_and_is_total(view in arb_view()) {
        let report = Categorizer::default().categorize(&view);
        // Exactly one temporality label per direction, always.
        for kind in [OpKindTag::Read, OpKindTag::Write] {
            let labels = TemporalityLabel::ALL
                .iter()
                .filter(|&&label| {
                    report.has(mosaic_core::Category::Temporality { kind, label })
                })
                .count();
            prop_assert_eq!(labels, 1, "direction {:?}", kind);
        }
    }

    #[test]
    fn significance_threshold_is_respected(view in arb_view()) {
        let config = CategorizerConfig::default();
        let threshold = config.insignificant_bytes;
        let report = Categorizer::new(config).categorize(&view);
        for (kind, ops) in [(OpKindTag::Read, &view.reads), (OpKindTag::Write, &view.writes)] {
            let total: u64 = ops.iter().map(|o| o.bytes).sum();
            let insig = report.has(mosaic_core::Category::Temporality {
                kind,
                label: TemporalityLabel::Insignificant,
            });
            prop_assert_eq!(total < threshold, insig, "kind {:?} total {}", kind, total);
        }
    }

    #[test]
    fn temporality_is_time_scale_invariant(view in arb_view(), scale_exp in -3i32..8) {
        // Powers of two keep every float product exact, so the property is
        // strict; arbitrary scales could flip decisions that sit exactly on
        // the 2x-dominance boundary through rounding.
        let scale = (2.0f64).powi(scale_exp);
        let scaled = OperationView {
            runtime: view.runtime * scale,
            nprocs: view.nprocs,
            reads: view
                .reads
                .iter()
                .map(|o| Operation { start: o.start * scale, end: o.end * scale, ..*o })
                .collect(),
            writes: view
                .writes
                .iter()
                .map(|o| Operation { start: o.start * scale, end: o.end * scale, ..*o })
                .collect(),
            meta: vec![],
        };
        let categorizer = Categorizer::default();
        let a = categorizer.categorize(&view);
        let b = categorizer.categorize(&scaled);
        prop_assert_eq!(a.read.temporality.label, b.read.temporality.label);
        prop_assert_eq!(a.write.temporality.label, b.write.temporality.label);
    }

    #[test]
    fn reports_always_roundtrip_json(view in arb_view()) {
        let report = Categorizer::default().categorize(&view);
        let parsed = mosaic_core::TraceReport::from_json(&report.to_json()).unwrap();
        prop_assert_eq!(parsed, report);
    }
}

/// Named regression for the committed proptest seed `bb844bc1…` (see
/// `tests/robustness.proptest-regressions`). The shrunk case is a chain of
/// six overlapping reads where only one carries bytes, scaled by the
/// decidedly non-power-of-two factor `59.38165539475814`. At that scale the
/// merged read interval's fraction-of-runtime lands exactly on the
/// 2×-dominance boundary between temporality labels, and f64 rounding can
/// push it to either side — which is why the live property
/// (`temporality_is_time_scale_invariant`) now restricts itself to
/// power-of-two scales, where every product is exact. This test pins the
/// weaker guarantees that must hold even at the hostile scale: the
/// categorizer stays total (exactly one temporality label per direction)
/// and power-of-two scaling of this exact view remains strictly invariant.
#[test]
fn regression_non_power_of_two_scale_on_boundary_view() {
    let raw = [
        (40.180_654_076_512_894, 56.981_909_748_251_05, 0u64),
        (54.551_798_380_312_974, 69.179_056_891_784_43, 104_857_600),
        (67.226_972_903_747_95, 83.212_590_262_719_33, 0),
        (81.309_842_379_837_16, 85.727_400_500_151_49, 0),
        (83.705_708_641_753_13, 96.441_578_417_198_81, 0),
        (90.759_335_358_299_62, 100.0, 0),
    ];
    let view = OperationView {
        runtime: 100.0,
        nprocs: 1,
        reads: raw
            .iter()
            .map(|&(start, end, bytes)| Operation {
                kind: OpKind::Read,
                start,
                end,
                bytes,
                ranks: 1,
            })
            .collect(),
        writes: vec![],
        meta: vec![],
    };
    let categorizer = Categorizer::default();
    let rescale = |view: &OperationView, scale: f64| OperationView {
        runtime: view.runtime * scale,
        nprocs: view.nprocs,
        reads: view
            .reads
            .iter()
            .map(|o| Operation { start: o.start * scale, end: o.end * scale, ..*o })
            .collect(),
        writes: vec![],
        meta: vec![],
    };

    let base = categorizer.categorize(&view);
    // Totality holds at the historical hostile scale — no panic, exactly one
    // temporality label per direction (whichever side of the boundary the
    // rounding picks).
    let hostile = categorizer.categorize(&rescale(&view, 59.381_655_394_758_14));
    for report in [&base, &hostile] {
        for kind in [OpKindTag::Read, OpKindTag::Write] {
            let labels = TemporalityLabel::ALL
                .iter()
                .filter(|&&label| report.has(mosaic_core::Category::Temporality { kind, label }))
                .count();
            assert_eq!(labels, 1, "direction {kind:?}");
        }
    }
    // Power-of-two scales stay exact even on this boundary-sitting view.
    for exp in [-3i32, -1, 1, 4, 8] {
        let scaled = categorizer.categorize(&rescale(&view, (2.0f64).powi(exp)));
        assert_eq!(scaled.read.temporality.label, base.read.temporality.label, "2^{exp}");
        assert_eq!(scaled.write.temporality.label, base.write.temporality.label, "2^{exp}");
    }
}

// ---- pipeline resilience -------------------------------------------------

#[test]
fn pipeline_survives_a_source_of_pure_garbage() {
    use mosaic_pipeline::executor::{process, PipelineConfig};
    use mosaic_pipeline::source::{ClosureSource, TraceInput};
    let source = ClosureSource::new(200, |i| TraceInput::bytes(vec![i as u8; i % 97]));
    let result = process(&source, &PipelineConfig::default());
    assert_eq!(result.funnel.total, 200);
    assert_eq!(result.funnel.format_corrupt, 200);
    assert!(result.outcomes.is_empty());
}
