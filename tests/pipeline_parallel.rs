//! Parallel-pipeline integration: determinism across thread counts, the
//! disk-file ingestion path, and memory-lean lazy generation.

use mosaic_pipeline::executor::{process, PipelineConfig};
use mosaic_pipeline::source::{ClosureSource, TraceInput, VecSource};
use mosaic_synth::{Dataset, DatasetConfig, Payload};

fn input_for(ds: &Dataset, i: usize) -> TraceInput {
    match ds.generate(i).payload {
        Payload::Log(log) => TraceInput::log(log),
        Payload::Bytes(bytes) => TraceInput::bytes(bytes),
    }
}

#[test]
fn results_identical_across_thread_counts() {
    let ds = Dataset::new(DatasetConfig { n_traces: 600, seed: 21, ..Default::default() });
    let mut results = Vec::new();
    for threads in [Some(1), Some(2), Some(4), None] {
        let source = ClosureSource::new(ds.len(), |i| input_for(&ds, i));
        let config = PipelineConfig { threads, ..Default::default() };
        results.push(process(&source, &config));
    }
    for pair in results.windows(2) {
        assert_eq!(pair[0].funnel, pair[1].funnel);
        assert_eq!(pair[0].outcomes, pair[1].outcomes);
        assert_eq!(pair[0].representatives, pair[1].representatives);
    }
}

#[test]
fn disk_roundtrip_through_mdf_files() {
    // Write a small dataset to .mdf files, read it back through the bytes
    // path, and verify the pipeline sees exactly what in-memory processing
    // sees.
    let ds = Dataset::new(DatasetConfig { n_traces: 120, seed: 33, ..Default::default() });
    let dir = std::env::temp_dir().join(format!("mosaic_pipeline_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let mut paths = Vec::new();
    for i in 0..ds.len() {
        let bytes = match ds.generate(i).payload {
            Payload::Log(log) => mosaic_darshan::mdf::to_bytes(&log),
            Payload::Bytes(b) => b,
        };
        let path = dir.join(format!("t{i:05}.mdf"));
        std::fs::write(&path, bytes).unwrap();
        paths.push(path);
    }

    let from_disk = VecSource::new(
        paths.iter().map(|p| TraceInput::bytes(std::fs::read(p).unwrap())).collect(),
    );
    let disk_result = process(&from_disk, &PipelineConfig::default());

    let in_memory = ClosureSource::new(ds.len(), |i| input_for(&ds, i));
    let mem_result = process(&in_memory, &PipelineConfig::default());

    assert_eq!(disk_result.funnel, mem_result.funnel);
    assert_eq!(disk_result.outcomes.len(), mem_result.outcomes.len());
    for (a, b) in disk_result.outcomes.iter().zip(&mem_result.outcomes) {
        assert_eq!(a.report.categories, b.report.categories);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn lazy_generation_is_memory_lean() {
    // A dataset object for 100k runs must be small: the runs are generated
    // on demand, only the app table is materialized.
    let ds = Dataset::new(DatasetConfig { n_traces: 100_000, seed: 1, ..Default::default() });
    assert_eq!(ds.len(), 100_000);
    // The app table is the only O(apps) storage.
    assert!(ds.apps().len() < 20_000);
    // Spot-generate a few without touching the rest.
    for i in [0, 50_000, 99_999] {
        let run = ds.generate(i);
        assert_eq!(run.job_id, i as u64);
    }
}

#[test]
fn dedup_tie_breaking_is_positional_and_order_sensitive_only_to_position() {
    use mosaic_pipeline::dedup::heaviest_per_app;
    let key = |uid: u32, name: &str| (uid, name.to_owned());

    // A three-way tie: the earliest position wins, however many challengers
    // arrive later with the same weight.
    let items =
        vec![(key(1, "lmp"), 70), (key(1, "lmp"), 70), (key(1, "lmp"), 70), (key(1, "lmp"), 69)];
    assert_eq!(heaviest_per_app(items), vec![0]);

    // Reversing the input moves the winning *position*, because the rule is
    // "first of the heaviest", not anything value-dependent.
    let forward = vec![(key(1, "a"), 5), (key(1, "a"), 9), (key(1, "a"), 9)];
    let backward: Vec<_> = forward.iter().cloned().rev().collect();
    assert_eq!(heaviest_per_app(forward), vec![1]);
    assert_eq!(heaviest_per_app(backward), vec![0]);

    // Ties at weight zero (metadata-only traces) behave the same way, and
    // a strictly heavier latecomer still beats an early tie.
    let items = vec![
        (key(7, "z"), 0),
        (key(7, "z"), 0),
        (key(7, "z"), 1),
        (key(8, "z"), -3),
        (key(8, "z"), -3),
    ];
    assert_eq!(heaviest_per_app(items), vec![2, 3]);

    // Interleaving groups does not let one group's weights shadow another's.
    let items = vec![(key(1, "a"), 10), (key(2, "b"), 99), (key(1, "a"), 10), (key(2, "b"), 99)];
    assert_eq!(heaviest_per_app(items), vec![0, 1]);
}

#[test]
fn by_reason_sums_to_evictions_under_every_thread_count() {
    // The typed eviction breakdown is accumulated by parallel workers and
    // merged; the merge must neither drop nor double-count. A heavily
    // corrupted dataset exercises every reason class at once.
    let ds = Dataset::new(DatasetConfig { n_traces: 800, corruption_rate: 0.55, seed: 97 });
    let mut funnels = Vec::new();
    for threads in [Some(1), Some(3), Some(8), None] {
        let source = ClosureSource::new(ds.len(), |i| input_for(&ds, i));
        let config = PipelineConfig { threads, ..Default::default() };
        let funnel = process(&source, &config).funnel;
        assert_eq!(
            funnel.by_reason.values().sum::<usize>(),
            funnel.evicted(),
            "threads {threads:?}: typed breakdown out of sync with evictions"
        );
        assert_eq!(funnel.valid + funnel.evicted(), funnel.total, "threads {threads:?}");
        assert!(funnel.evicted() > 0, "corpus should actually evict something");
        funnels.push(funnel);
    }
    // The whole breakdown — not just its sum — is thread-count invariant.
    for pair in funnels.windows(2) {
        assert_eq!(pair[0], pair[1]);
    }
}

#[test]
fn tracing_changes_no_results_and_spans_cover_the_funnel() {
    // The observability tentpole's contract: a traced run is analytically
    // indistinguishable from an untraced one, and the timeline it attaches
    // accounts for every trace that entered the funnel.
    let ds = Dataset::new(DatasetConfig { n_traces: 400, corruption_rate: 0.3, seed: 77 });
    let source = ClosureSource::new(ds.len(), |i| input_for(&ds, i));
    let plain = process(&source, &PipelineConfig::default());
    assert!(plain.timeline.is_none());

    let source = ClosureSource::new(ds.len(), |i| input_for(&ds, i));
    let config = PipelineConfig { trace_capacity: Some(8192), ..Default::default() };
    let traced = process(&source, &config);

    assert_eq!(plain.funnel, traced.funnel);
    assert_eq!(plain.outcomes, traced.outcomes);
    assert_eq!(plain.representatives, traced.representatives);

    let timeline = traced.timeline.expect("tracing enabled");
    assert_eq!(timeline.dropped, 0, "8192 slots must hold a 400-trace corpus");
    // Every trace fetched exactly once; fetch spans are the funnel roster.
    let fetches = timeline
        .events
        .iter()
        .filter(|e| e.stage == mosaic_obs::Stage::Fetch)
        .map(|e| e.trace)
        .collect::<std::collections::BTreeSet<u64>>();
    assert_eq!(fetches.len(), 400);
    // The Chrome export is valid JSON with one event stream.
    let chrome: serde_json::Value =
        serde_json::from_str(&timeline.to_chrome_json()).expect("valid JSON");
    assert!(chrome["traceEvents"].as_array().map_or(0, Vec::len) > 400);
}

#[test]
fn stability_statistics_match_dedup_premise() {
    // §III-B1: the runs of one application mostly categorize identically —
    // the premise justifying "analyze only the heaviest trace".
    let ds = Dataset::new(DatasetConfig { n_traces: 3000, corruption_rate: 0.0, seed: 13 });
    let source = ClosureSource::new(ds.len(), |i| input_for(&ds, i));
    let result = process(&source, &PipelineConfig::default());
    let stats = mosaic_pipeline::stability::app_stability(&result.outcomes, 10);
    assert!(!stats.is_empty(), "need apps with >= 10 runs");
    let mean = mosaic_pipeline::stability::mean_stability(&stats);
    assert!((0.75..=1.0).contains(&mean), "mean stability {mean} outside the paper's 80–97 % band");
}
