//! Visualization integration: every archetype's trace must render to
//! well-formed SVG, and the dataset-level figures must build from real
//! pipeline output.

use mosaic_core::Categorizer;
use mosaic_darshan::ops::OperationView;
use mosaic_synth::archetype::Archetype;
use mosaic_synth::build::{build_run, RunSpec};
use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn well_formed(svg: &str) {
    assert!(svg.starts_with("<svg"), "not an svg");
    assert!(svg.trim_end().ends_with("</svg>"));
    // Every opened tag is self-closed or closed: crude but effective check
    // that we never emit dangling elements.
    assert_eq!(svg.matches("<text").count(), svg.matches("</text>").count());
    assert!(!svg.contains("NaN"), "NaN leaked into coordinates");
    assert!(!svg.contains("inf"), "infinity leaked into coordinates");
}

#[test]
fn every_archetype_timeline_renders() {
    let categorizer = Categorizer::default();
    for archetype in [
        Archetype::Quiet,
        Archetype::ReadStartOnly,
        Archetype::ReadComputeWrite,
        Archetype::WriteEndOnly,
        Archetype::SteadyReadWrite,
        Archetype::SteadyWriter,
        Archetype::CheckpointerRead,
        Archetype::CheckpointerQuiet,
        Archetype::PeriodicReader,
        Archetype::MetadataStorm,
        Archetype::MidBurst,
        Archetype::HardUneven,
    ] {
        let spec = RunSpec {
            archetype,
            job_id: 1,
            uid: 1,
            nprocs: 64,
            base_runtime: 3600.0,
            start_epoch: 0,
            exe: "/apps/viz/test".into(),
        };
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let (log, _) = build_run(&spec, &mut rng);
        let view = OperationView::from_log(&log);
        let report = categorizer.categorize(&view);
        let svg = mosaic_viz::timeline::render(&view, &report);
        well_formed(&svg);
    }
}

#[test]
fn dataset_figures_render_from_pipeline_output() {
    use mosaic_pipeline::executor::{process, PipelineConfig};
    use mosaic_pipeline::source::{ClosureSource, TraceInput};
    use mosaic_synth::{Dataset, DatasetConfig, Payload};

    let ds = Dataset::new(DatasetConfig { n_traces: 400, seed: 12, ..Default::default() });
    let source = ClosureSource::new(ds.len(), |i| match ds.generate(i).payload {
        Payload::Log(log) => TraceInput::log(log),
        Payload::Bytes(bytes) => TraceInput::bytes(bytes),
    });
    let result = process(&source, &PipelineConfig::default());

    let bars = mosaic_viz::bars::render(
        &result.single_run_counts(),
        &result.all_runs_counts(),
        "categories",
    );
    well_formed(&bars);
    assert!(bars.contains("read_insignificant"));

    let heat = mosaic_viz::heatmap::render(&result.jaccard_single_run(), 0.01);
    well_formed(&heat);
    assert!(heat.contains("Jaccard"));
}

#[test]
fn simulated_dxt_timeline_renders_with_periodicity_annotation() {
    use mosaic_iosim::{MachineConfig, Simulation};
    let program = mosaic_synth::programs::steady_writer(16, 64 << 20, 90.0);
    let outcome = Simulation::new(MachineConfig::default(), 8, 5)
        .with_dxt()
        .run_detailed(&program, "/apps/x");
    let view = outcome.dxt.expect("dxt").operation_view();
    let report = Categorizer::default().categorize(&view);
    let svg = mosaic_viz::timeline::render(&view, &report);
    well_formed(&svg);
    assert!(svg.contains("write periodic"), "periodic annotation missing");
}
