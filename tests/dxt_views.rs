//! DXT integration: the simulator's DXT capture must agree with its
//! aggregated capture, the aggregation gap must behave per §IV-A, and the
//! MDX format must round-trip simulator output.

use mosaic_core::category::TemporalityLabel;
use mosaic_core::Categorizer;
use mosaic_darshan::dxt;
use mosaic_darshan::ops::OpKind;
use mosaic_iosim::{MachineConfig, Simulation};
use mosaic_synth::programs;

fn machine() -> MachineConfig {
    MachineConfig::default()
}

#[test]
fn dxt_and_aggregated_views_agree_on_totals() {
    let program = programs::checkpointer(8, 45.0, 64 << 20);
    let outcome = Simulation::new(machine(), 8, 21).with_dxt().run_detailed(&program, "/apps/ckpt");
    let dxt_trace = outcome.dxt.expect("dxt enabled");
    let dxt_view = dxt_trace.operation_view();
    assert_eq!(
        dxt_view.total_bytes(OpKind::Write) as i64,
        outcome.trace.total_bytes_written(),
        "aggregated and DXT write volumes must match"
    );
    assert_eq!(dxt_view.total_bytes(OpKind::Read) as i64, outcome.trace.total_bytes_read(),);
    // DXT has at least as many operations as the aggregated view.
    let agg_view = mosaic_darshan::ops::OperationView::from_log(&outcome.trace);
    assert!(dxt_view.writes.len() >= agg_view.writes.len());
}

#[test]
fn dxt_downgrade_matches_shim_aggregation_semantics() {
    // Re-aggregating the DXT trace must produce the same per-direction
    // interval hull as the shim's own aggregated trace (per-record details
    // differ only in the shared-file reduction, which DXT doesn't apply).
    let program = programs::read_compute_write(32 << 20, 600.0, 16 << 20);
    let outcome = Simulation::new(machine(), 4, 5).with_dxt().run_detailed(&program, "/apps/rcw");
    let from_dxt = outcome.dxt.expect("dxt").to_aggregated();
    assert_eq!(from_dxt.total_bytes_read(), outcome.trace.total_bytes_read());
    assert_eq!(from_dxt.total_bytes_written(), outcome.trace.total_bytes_written());
    assert!(mosaic_darshan::validate::validate(&from_dxt).is_clean());
}

#[test]
fn aggregation_hides_periodicity_dxt_reveals_it() {
    // §IV-A: one long-lived file, periodic slabs inside.
    let program = programs::steady_writer(24, 128 << 20, 120.0);
    let outcome =
        Simulation::new(machine(), 8, 9).with_dxt().run_detailed(&program, "/apps/stream");

    let categorizer = Categorizer::default();
    let agg_report = categorizer.categorize_log(&outcome.trace);
    assert_eq!(agg_report.write.temporality.label, TemporalityLabel::Steady);
    assert!(agg_report.write.periodic.is_empty(), "aggregated view must hide the slab cadence");

    let dxt_report = categorizer.categorize(&outcome.dxt.expect("dxt").operation_view());
    assert!(!dxt_report.write.periodic.is_empty(), "DXT view must reveal the slab cadence");
    let period = dxt_report.write.periodic[0].period;
    assert!((period - 120.0).abs() < 30.0, "period {period}");
}

#[test]
fn mdx_roundtrips_simulator_output() {
    let program = programs::metadata_storm(4, 10);
    let outcome = Simulation::new(machine(), 8, 3).with_dxt().run_detailed(&program, "/apps/storm");
    let trace = outcome.dxt.expect("dxt");
    let parsed = dxt::from_bytes(&dxt::to_bytes(&trace)).expect("parse");
    assert_eq!(parsed, trace);
    assert!(trace.total_accesses() > 0);
}

#[test]
fn dxt_capture_is_optional_and_off_by_default() {
    let program = programs::checkpointer(2, 10.0, 1 << 20);
    let outcome = Simulation::new(machine(), 2, 1).run_detailed(&program, "/apps/x");
    assert!(outcome.dxt.is_none());
}
