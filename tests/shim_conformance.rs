//! Conformance checks for the in-repo dependency shims (`shims/`).
//!
//! The workspace builds with zero registry access: `rand`, `serde`,
//! `serde_json`, `rayon` and friends all resolve to in-repo shim crates.
//! Each shim carries its own unit tests; these integration checks pin the
//! properties the *workspace* depends on, at the places where several
//! shims compose — the derive macros feeding the JSON writer, and the
//! thread-pool executor feeding the snapshot digest.

use mosaic_pipeline::executor::{process, PipelineConfig};
use mosaic_pipeline::source::VecSource;
use mosaic_pipeline::ResultSnapshot;
use mosaic_synth::MiniCorpus;
use mosaic_verify::differential::inputs_of;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha20Rng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

// ---- rand: published test vectors --------------------------------------

/// RFC 8439 §2.3.2: ChaCha20 block function test vector. The shim's ChaCha
/// core must produce the exact keystream bytes of the reference
/// implementation, not merely *a* deterministic stream.
#[test]
fn chacha20_keystream_matches_rfc8439() {
    let key: [u8; 32] = [
        0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d, 0x0e,
        0x0f, 0x10, 0x11, 0x12, 0x13, 0x14, 0x15, 0x16, 0x17, 0x18, 0x19, 0x1a, 0x1b, 0x1c, 0x1d,
        0x1e, 0x1f,
    ];
    let mut rng = ChaCha20Rng::from_seed(key);
    // The seeded stream starts at block counter 0 with a zero nonce; the
    // first 16 keystream bytes for the all-bytes-ascending key are fixed
    // by the algorithm (computed with an independent implementation of the
    // RFC block function, itself checked against the §2.3.2 vector).
    let mut out = [0u8; 16];
    rng.fill_bytes(&mut out);
    let expected: [u8; 16] = [
        0x39, 0xfd, 0x2b, 0x7d, 0xd9, 0xc5, 0x19, 0x6a, 0x8d, 0xbd, 0x03, 0x77, 0xb8, 0xdc, 0x4a,
        0x49,
    ];
    assert_eq!(out, expected, "ChaCha20 keystream drifted from the reference");
}

/// Same-seed streams are identical; different seeds diverge immediately.
#[test]
fn chacha_streams_are_seed_deterministic() {
    let mut a = ChaCha20Rng::seed_from_u64(42);
    let mut b = ChaCha20Rng::seed_from_u64(42);
    let mut c = ChaCha20Rng::seed_from_u64(43);
    let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
    assert_eq!(xa, xb);
    assert_ne!(xa, xc);
}

// ---- serde_json: f64 round-trips, escaping, derive composition ---------

/// Every f64 the pipeline emits (report fractions, periods, timings) must
/// survive text round-trips bit-for-bit — the `float_roundtrip` grade the
/// real serde_json provides behind a feature flag.
#[test]
fn f64_values_roundtrip_exactly_through_json_text() {
    let cases = [
        0.0,
        -0.0,
        1.0,
        -1.0,
        0.1,
        2.0 / 3.0,
        152.059_646_855_831_12,
        1e-308,
        2.225_073_858_507_201_4e-308, // smallest normal
        f64::MAX,
        f64::MIN_POSITIVE,
        std::f64::consts::PI,
    ];
    for &v in &cases {
        let text = serde_json::to_string(&v).unwrap();
        let back: f64 = serde_json::from_str(&text).unwrap();
        assert_eq!(back.to_bits(), v.to_bits(), "{v:?} -> {text} -> {back:?}");
    }
}

/// Control characters, quotes, backslashes and non-ASCII must escape on
/// the way out and un-escape on the way back; `\uXXXX` forms (including
/// surrogate pairs) must parse even though the writer never emits them
/// for characters it can pass through raw.
#[test]
fn string_escaping_roundtrips_and_unicode_escapes_parse() {
    let nasty = "quote\" backslash\\ newline\n tab\t nul\u{0} bell\u{7} é λ 🚀";
    let text = serde_json::to_string(&nasty).unwrap();
    assert!(text.contains("\\\""));
    assert!(text.contains("\\\\"));
    assert!(text.contains("\\n"));
    assert!(!text.contains('\n'), "raw control characters must not appear: {text}");
    let back: String = serde_json::from_str(&text).unwrap();
    assert_eq!(back, nasty);

    // \u escapes, including a surrogate pair for a non-BMP scalar.
    let parsed: String = serde_json::from_str("\"\\u0041\\u00e9\\ud83d\\ude80\"").unwrap();
    assert_eq!(parsed, "Aé\u{1F680}");
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
enum ShimProbeMode {
    Idle,
    Busy { load: f64, tag: String },
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct ShimProbeInner {
    values: Vec<f64>,
    label: Option<String>,
    counts: BTreeMap<String, u64>,
}

#[derive(Debug, PartialEq, Serialize, Deserialize)]
struct ShimProbeOuter {
    name: String,
    mode: ShimProbeMode,
    inner: ShimProbeInner,
    #[serde(default)]
    optional_extra: u32,
}

/// The derive shims and the JSON shim compose: a nested struct with an
/// enum, maps, options and floats round-trips through text, and a
/// `#[serde(default)]` field absent from the document deserializes to its
/// default instead of erroring.
#[test]
fn nested_derived_structs_roundtrip_through_json() {
    let original = ShimProbeOuter {
        name: "probe \"x\"".to_string(),
        mode: ShimProbeMode::Busy { load: 0.375, tag: "λ".to_string() },
        inner: ShimProbeInner {
            values: vec![1.0, -0.0, 1e-12],
            label: None,
            counts: [("a".to_string(), 1u64), ("b".to_string(), u64::MAX)].into_iter().collect(),
        },
        optional_extra: 7,
    };
    let text = serde_json::to_string(&original).unwrap();
    let back: ShimProbeOuter = serde_json::from_str(&text).unwrap();
    assert_eq!(back, original);

    // Unit enum variants serialize as bare strings.
    let idle = serde_json::to_string(&ShimProbeMode::Idle).unwrap();
    assert_eq!(idle, "\"Idle\"");

    // A document missing the #[serde(default)] field still deserializes.
    let trimmed = r#"{
        "name": "n",
        "mode": "Idle",
        "inner": {"values": [], "label": "here", "counts": {}}
    }"#;
    let parsed: ShimProbeOuter = serde_json::from_str(trimmed).unwrap();
    assert_eq!(parsed.optional_extra, 0);
    assert_eq!(parsed.inner.label.as_deref(), Some("here"));
}

// ---- rayon: serial vs shimmed-parallel determinism ----------------------

/// The pool oracle from `mosaic verify --differential`, run across the
/// shimmed rayon: the 1-thread pool, explicit multi-thread pools and the
/// global default must produce byte-identical snapshots on a standard
/// corpus. Work-stealing order must never leak into results.
#[test]
fn shimmed_thread_pools_match_serial_snapshot() {
    let corpus = MiniCorpus::standard().remove(0);
    let inputs = inputs_of(&corpus);
    let config = |threads| PipelineConfig { threads, ..Default::default() };
    let serial = ResultSnapshot::of(&process(&VecSource::new(inputs.clone()), &config(Some(1))));
    for threads in [Some(2), Some(4), None] {
        let parallel =
            ResultSnapshot::of(&process(&VecSource::new(inputs.clone()), &config(threads)));
        assert_eq!(parallel, serial, "pool {threads:?} diverged from the serial snapshot");
    }
}
