//! Format integration: MDF binary and text formats must round-trip
//! arbitrary valid traces — including simulator-produced and
//! generator-produced ones — and reject every corruption the injectors can
//! produce. Property-based via proptest.

use mosaic_darshan::counter::{Module, PosixCounter, PosixFCounter};
use mosaic_darshan::job::JobHeader;
use mosaic_darshan::log::{TraceLog, TraceLogBuilder};
use mosaic_darshan::{mdf, text};
use proptest::prelude::*;

fn arb_log() -> impl Strategy<Value = TraceLog> {
    // Header fields plus up to 8 records with arbitrary counters.
    (
        0u64..u64::MAX / 2,
        0u32..100_000,
        1u32..4096,
        0i64..2_000_000_000,
        1i64..200_000,
        "[a-z/_.0-9]{0,40}",
        prop::collection::vec(
            (
                "[a-z/_.0-9]{1,30}",
                -1i32..64,
                0u8..3,
                prop::collection::vec(0i64..1 << 40, mosaic_darshan::counter::N_POSIX_COUNTERS),
                prop::collection::vec(0f64..1e6, mosaic_darshan::counter::N_POSIX_FCOUNTERS),
            ),
            0..8,
        ),
    )
        .prop_map(|(job_id, uid, nprocs, start, runtime, exe, records)| {
            let header = JobHeader::new(job_id, uid, nprocs, start, start + runtime).with_exe(exe);
            let mut b = TraceLogBuilder::new(header);
            for (path, rank, module, counters, fcounters) in records {
                let h = b.begin_record(&path, rank);
                let rec = b.record_mut(h);
                rec.module = Module::from_tag(module).unwrap();
                for (c, v) in PosixCounter::ALL.iter().zip(&counters) {
                    rec.set(*c, *v);
                }
                for (c, v) in PosixFCounter::ALL.iter().zip(&fcounters) {
                    rec.setf(*c, *v);
                }
            }
            b.finish()
        })
}

/// Every byte offset at which one wire section of `log`'s MDF encoding ends
/// and the next begins (magic, version/flags, fixed header, exe length, exe
/// bytes, record count, each record, name count, each name entry). Cutting
/// the file at any of these is the "cleanest" possible truncation — no
/// half-written field to trip over — and the parser must still reject it.
fn section_boundaries(log: &TraceLog) -> Vec<usize> {
    let total = mdf::to_bytes(log).len();
    let mut cuts = vec![8, 12, 44, 48];
    let mut off = 48 + log.header().exe.len();
    cuts.push(off);
    off += 4; // n_records
    cuts.push(off);
    for _ in log.records() {
        off += mdf::RECORD_WIRE_BYTES;
        cuts.push(off);
    }
    off += 4; // n_names
    cuts.push(off);
    for name in log.names().values() {
        off += 8 + 2 + name.len();
        cuts.push(off);
    }
    assert_eq!(off + 4, total, "boundary arithmetic must match the writer");
    cuts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mdf_roundtrips_arbitrary_logs(log in arb_log()) {
        let bytes = mdf::to_bytes(&log);
        let parsed = mdf::from_bytes(&bytes).expect("parse");
        prop_assert_eq!(parsed, log);
    }

    #[test]
    fn text_roundtrips_arbitrary_logs(log in arb_log()) {
        let rendered = text::to_text(&log);
        let parsed = text::parse(&rendered).expect("parse");
        // Text omits zero counters; the parse reconstructs them as zero, so
        // equality holds — except records whose counters are ALL zero, which
        // vanish entirely (they carry no information). Compare modulo those.
        let nonzero = |log: &TraceLog| -> Vec<_> {
            log.records()
                .iter()
                .filter(|r| {
                    r.counters.iter().any(|&c| c != 0) || r.fcounters.iter().any(|&c| c != 0.0)
                })
                .cloned()
                .collect()
        };
        prop_assert_eq!(parsed.header(), log.header());
        prop_assert_eq!(nonzero(&parsed), nonzero(&log));
    }

    #[test]
    fn truncated_mdf_never_parses(log in arb_log(), frac in 0.05f64..0.95) {
        let bytes = mdf::to_bytes(&log);
        let cut = ((bytes.len() as f64 * frac) as usize).clamp(1, bytes.len() - 1);
        prop_assert!(mdf::from_bytes(&bytes[..cut]).is_err());
    }

    #[test]
    fn bitflip_mdf_never_parses_silently(log in arb_log(), pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = mdf::to_bytes(&log);
        let idx = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[idx] ^= 1 << bit;
        // Either it fails to parse, or (flip in a name/exe byte that cancels
        // out — impossible with CRC) parses to the identical log.
        match mdf::from_bytes(&bytes) {
            Err(_) => {}
            Ok(parsed) => prop_assert_eq!(parsed, log),
        }
    }

    #[test]
    fn truncation_at_and_near_section_boundaries_never_parses(
        log in arb_log(),
        pick in any::<prop::sample::Index>(),
        back in 0usize..4,
    ) {
        // Section-boundary cuts are the hostile truncations most likely to
        // parse by accident: every field before the cut is complete, so only
        // the count/CRC bookkeeping can catch them. `back` also probes a few
        // bytes short of each boundary (mid-field cuts).
        let bytes = mdf::to_bytes(&log);
        let cuts = section_boundaries(&log);
        let cut = cuts[pick.index(cuts.len())].saturating_sub(back).max(1);
        if cut < bytes.len() {
            prop_assert!(mdf::from_bytes(&bytes[..cut]).is_err(), "cut at {} parsed", cut);
        }
    }
}

#[test]
fn simulator_traces_roundtrip_both_formats() {
    use mosaic_iosim::{MachineConfig, Simulation};
    let program = mosaic_synth::programs::checkpointer(5, 30.0, 16 << 20);
    let log = Simulation::new(MachineConfig::default(), 8, 3).run(&program, "/apps/x");
    let via_mdf = mdf::from_bytes(&mdf::to_bytes(&log)).unwrap();
    assert_eq!(via_mdf, log);
    let via_text = text::parse(&text::to_text(&log)).unwrap();
    assert_eq!(via_text.header(), log.header());
    assert_eq!(via_text.total_bytes_written(), log.total_bytes_written());
}

#[test]
fn generator_traces_roundtrip_mdf() {
    use mosaic_synth::{Dataset, DatasetConfig, Payload};
    let ds = Dataset::new(DatasetConfig { n_traces: 60, corruption_rate: 0.0, seed: 4 });
    for run in ds.iter() {
        let Payload::Log(log) = run.payload else { panic!("expected valid log") };
        let parsed = mdf::from_bytes(&mdf::to_bytes(&log)).unwrap();
        assert_eq!(parsed, log);
    }
}

#[test]
fn truncation_at_every_section_boundary_is_rejected() {
    // Exhaustive version of the property above for one representative log:
    // cut the file at *every* section boundary and demand a parse error.
    let mut b = TraceLogBuilder::new(JobHeader::new(7, 9, 64, 100, 400).with_exe("/apps/lmp"));
    for i in 0..3 {
        let h = b.begin_record(&format!("/scratch/out.{i}"), i);
        b.record_mut(h).set(PosixCounter::Writes, 5 + i as i64);
    }
    let log = b.finish();
    let bytes = mdf::to_bytes(&log);
    for cut in section_boundaries(&log) {
        assert!(cut < bytes.len());
        assert!(mdf::from_bytes(&bytes[..cut]).is_err(), "cut at section boundary {cut} parsed");
    }
}

#[test]
fn zero_length_fields_roundtrip_mdf() {
    // The all-zero degenerate corners: empty exe, a record whose 36 counters
    // are all zero, and a zero-length name string. None carries information,
    // but the wire format must represent each faithfully rather than
    // collapsing or rejecting them.
    let mut b = TraceLogBuilder::new(JobHeader::new(0, 0, 1, 0, 1));
    b.begin_record("x", -1);
    let built = b.finish();
    let mut names = built.names().clone();
    for name in names.values_mut() {
        name.clear();
    }
    let log = TraceLog::from_parts(built.header().clone(), built.records().to_vec(), names);
    let parsed = mdf::from_bytes(&mdf::to_bytes(&log)).unwrap();
    assert_eq!(parsed, log);
    assert_eq!(parsed.names().values().next().map(String::as_str), Some(""));
}

#[test]
fn exe_at_the_clamp_roundtrips_and_one_past_is_rejected() {
    use mosaic_darshan::error::FormatError;
    // MAX_EXE_LEN is an inclusive bound: exactly at the clamp must survive.
    let at = "e".repeat(mdf::MAX_EXE_LEN as usize);
    let log = TraceLogBuilder::new(JobHeader::new(1, 1, 1, 0, 10).with_exe(at)).finish();
    assert_eq!(mdf::from_bytes(&mdf::to_bytes(&log)).unwrap(), log);

    // One byte past it, the bomb guard fires even though the encoding is
    // otherwise perfectly self-consistent (valid CRC and all).
    let over = "e".repeat(mdf::MAX_EXE_LEN as usize + 1);
    let log = TraceLogBuilder::new(JobHeader::new(1, 1, 1, 0, 10).with_exe(over)).finish();
    assert!(matches!(
        mdf::from_bytes(&mdf::to_bytes(&log)),
        Err(FormatError::ImplausibleLength { context: "exe", .. })
    ));
}

/// Named regression for the committed proptest seed `3f0b8ffa…` (see
/// `tests/formats_roundtrip.proptest-regressions`). The shrunk case is a
/// single record whose *first* counter (`Opens`) is zero with every other
/// counter nonzero, filed under the path `"."` with an empty exe string.
/// The text format omits zero-valued counters, so the round-trip used to
/// lose `Opens = 0` in a way the modulo-zero comparison did not forgive,
/// and `"."` exercised the degenerate one-character path. Kept as a unit
/// test so the exact shape is re-run by name even if the seed file is lost.
#[test]
fn regression_zero_first_counter_dot_path_roundtrips() {
    let counters: [i64; 25] = [
        0,
        220,
        937_140_759_137,
        412_358_803_833,
        46_464_933_110,
        1_029_897_010_748,
        609_403_638_473,
        98_725_071_115,
        812_230_124_801,
        824_431_739_818,
        665_382_967_530,
        719_887_311_249,
        403_752_506_241,
        822_786_636_253,
        196_674_713_075,
        233_103_479_945,
        225_728_826_100,
        1_071_284_755_413,
        702_565_898_738,
        829_494_380_641,
        495_109_027_051,
        65_652_269_169,
        574_847_434_481,
        856_815_781_271,
        660_620_025_762,
    ];
    let fcounters: [f64; 11] = [
        963_428.170_904_028_9,
        284_909.441_444_105_93,
        789_820.950_036_736,
        338_454.629_327_670_03,
        862_498.049_908_476_6,
        19_361.410_897_874_488,
        755_401.502_676_847_6,
        909_595.595_174_396,
        181_144.505_300_930_64,
        961_254.888_051_529_2,
        245_272.290_141_433_83,
    ];
    let mut b = TraceLogBuilder::new(JobHeader::new(0, 0, 1, 0, 1));
    let h = b.begin_record(".", 0);
    let rec = b.record_mut(h);
    for (c, v) in PosixCounter::ALL.iter().zip(counters) {
        rec.set(*c, v);
    }
    for (c, v) in PosixFCounter::ALL.iter().zip(fcounters) {
        rec.setf(*c, v);
    }
    let log = b.finish();

    assert_eq!(mdf::from_bytes(&mdf::to_bytes(&log)).unwrap(), log);
    let parsed = text::parse(&text::to_text(&log)).unwrap();
    assert_eq!(parsed.header(), log.header());
    assert_eq!(parsed.records(), log.records());
    assert_eq!(parsed.names(), log.names());
}

#[test]
fn every_injected_corruption_is_rejected() {
    use mosaic_synth::corrupt::{corrupt_as, CorruptArtifact, CorruptionKind};
    use mosaic_synth::{Dataset, DatasetConfig, Payload};
    use rand::SeedableRng;
    let ds = Dataset::new(DatasetConfig { n_traces: 10, corruption_rate: 0.0, seed: 8 });
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
    for run in ds.iter() {
        let Payload::Log(log) = run.payload else { unreachable!() };
        for kind in CorruptionKind::ALL {
            match corrupt_as(log.clone(), kind, &mut rng) {
                CorruptArtifact::Bytes(bytes) => assert!(mdf::from_bytes(&bytes).is_err()),
                CorruptArtifact::Log(mut broken) => {
                    assert!(mosaic_darshan::validate::sanitize(&mut broken).is_err())
                }
            }
        }
    }
}
