//! Format integration: MDF binary and text formats must round-trip
//! arbitrary valid traces — including simulator-produced and
//! generator-produced ones — and reject every corruption the injectors can
//! produce. Property-based via proptest.

use mosaic_darshan::counter::{Module, PosixCounter, PosixFCounter};
use mosaic_darshan::job::JobHeader;
use mosaic_darshan::log::{TraceLog, TraceLogBuilder};
use mosaic_darshan::{mdf, text};
use proptest::prelude::*;

fn arb_log() -> impl Strategy<Value = TraceLog> {
    // Header fields plus up to 8 records with arbitrary counters.
    (
        0u64..u64::MAX / 2,
        0u32..100_000,
        1u32..4096,
        0i64..2_000_000_000,
        1i64..200_000,
        "[a-z/_.0-9]{0,40}",
        prop::collection::vec(
            (
                "[a-z/_.0-9]{1,30}",
                -1i32..64,
                0u8..3,
                prop::collection::vec(0i64..1 << 40, mosaic_darshan::counter::N_POSIX_COUNTERS),
                prop::collection::vec(0f64..1e6, mosaic_darshan::counter::N_POSIX_FCOUNTERS),
            ),
            0..8,
        ),
    )
        .prop_map(|(job_id, uid, nprocs, start, runtime, exe, records)| {
            let header = JobHeader::new(job_id, uid, nprocs, start, start + runtime).with_exe(exe);
            let mut b = TraceLogBuilder::new(header);
            for (path, rank, module, counters, fcounters) in records {
                let h = b.begin_record(&path, rank);
                let rec = b.record_mut(h);
                rec.module = Module::from_tag(module).unwrap();
                for (c, v) in PosixCounter::ALL.iter().zip(&counters) {
                    rec.set(*c, *v);
                }
                for (c, v) in PosixFCounter::ALL.iter().zip(&fcounters) {
                    rec.setf(*c, *v);
                }
            }
            b.finish()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mdf_roundtrips_arbitrary_logs(log in arb_log()) {
        let bytes = mdf::to_bytes(&log);
        let parsed = mdf::from_bytes(&bytes).expect("parse");
        prop_assert_eq!(parsed, log);
    }

    #[test]
    fn text_roundtrips_arbitrary_logs(log in arb_log()) {
        let rendered = text::to_text(&log);
        let parsed = text::parse(&rendered).expect("parse");
        // Text omits zero counters; the parse reconstructs them as zero, so
        // equality holds — except records whose counters are ALL zero, which
        // vanish entirely (they carry no information). Compare modulo those.
        let nonzero = |log: &TraceLog| -> Vec<_> {
            log.records()
                .iter()
                .filter(|r| {
                    r.counters.iter().any(|&c| c != 0) || r.fcounters.iter().any(|&c| c != 0.0)
                })
                .cloned()
                .collect()
        };
        prop_assert_eq!(parsed.header(), log.header());
        prop_assert_eq!(nonzero(&parsed), nonzero(&log));
    }

    #[test]
    fn truncated_mdf_never_parses(log in arb_log(), frac in 0.05f64..0.95) {
        let bytes = mdf::to_bytes(&log);
        let cut = ((bytes.len() as f64 * frac) as usize).clamp(1, bytes.len() - 1);
        prop_assert!(mdf::from_bytes(&bytes[..cut]).is_err());
    }

    #[test]
    fn bitflip_mdf_never_parses_silently(log in arb_log(), pos_frac in 0.0f64..1.0, bit in 0u8..8) {
        let mut bytes = mdf::to_bytes(&log);
        let idx = ((bytes.len() - 1) as f64 * pos_frac) as usize;
        bytes[idx] ^= 1 << bit;
        // Either it fails to parse, or (flip in a name/exe byte that cancels
        // out — impossible with CRC) parses to the identical log.
        match mdf::from_bytes(&bytes) {
            Err(_) => {}
            Ok(parsed) => prop_assert_eq!(parsed, log),
        }
    }
}

#[test]
fn simulator_traces_roundtrip_both_formats() {
    use mosaic_iosim::{MachineConfig, Simulation};
    let program = mosaic_synth::programs::checkpointer(5, 30.0, 16 << 20);
    let log = Simulation::new(MachineConfig::default(), 8, 3).run(&program, "/apps/x");
    let via_mdf = mdf::from_bytes(&mdf::to_bytes(&log)).unwrap();
    assert_eq!(via_mdf, log);
    let via_text = text::parse(&text::to_text(&log)).unwrap();
    assert_eq!(via_text.header(), log.header());
    assert_eq!(via_text.total_bytes_written(), log.total_bytes_written());
}

#[test]
fn generator_traces_roundtrip_mdf() {
    use mosaic_synth::{Dataset, DatasetConfig, Payload};
    let ds = Dataset::new(DatasetConfig { n_traces: 60, corruption_rate: 0.0, seed: 4 });
    for run in ds.iter() {
        let Payload::Log(log) = run.payload else { panic!("expected valid log") };
        let parsed = mdf::from_bytes(&mdf::to_bytes(&log)).unwrap();
        assert_eq!(parsed, log);
    }
}

#[test]
fn every_injected_corruption_is_rejected() {
    use mosaic_synth::corrupt::{corrupt_as, CorruptArtifact, CorruptionKind};
    use mosaic_synth::{Dataset, DatasetConfig, Payload};
    use rand::SeedableRng;
    let ds = Dataset::new(DatasetConfig { n_traces: 10, corruption_rate: 0.0, seed: 8 });
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(17);
    for run in ds.iter() {
        let Payload::Log(log) = run.payload else { unreachable!() };
        for kind in CorruptionKind::ALL {
            match corrupt_as(log.clone(), kind, &mut rng) {
                CorruptArtifact::Bytes(bytes) => assert!(mdf::from_bytes(&bytes).is_err()),
                CorruptArtifact::Log(mut broken) => {
                    assert!(mosaic_darshan::validate::sanitize(&mut broken).is_err())
                }
            }
        }
    }
}
