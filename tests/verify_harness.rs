//! Conformance harness integration: the full `mosaic verify --all` run must
//! be green on a fresh checkout, and each suite must actually be able to
//! fail (a harness that cannot fail verifies nothing).

use mosaic_verify::{golden, run, VerifyOptions, VerifyReport};

/// Assert that every standard snapshot is committed in `tests/golden/`.
///
/// The snapshots are part of the repository; a missing file means the
/// checkout is broken or a new corpus was added without blessing it. This
/// must *fail loudly*, never silently regenerate: an auto-bless would pin
/// whatever the current (possibly buggy) code produces and the golden
/// suite would verify nothing. To add or update snapshots intentionally,
/// run `mosaic verify --golden --bless` and commit the diff.
fn ensure_golden() {
    let dir = golden::default_dir();
    for corpus in mosaic_synth::MiniCorpus::standard() {
        let path = dir.join(format!("{}.json", corpus.name()));
        assert!(
            path.exists(),
            "missing golden snapshot {} — run `mosaic verify --golden --bless` and commit it",
            path.display()
        );
    }
}

#[test]
fn full_harness_is_green_on_fresh_checkout() {
    ensure_golden();
    // Exactly what CI runs: every differential oracle, every metamorphic
    // invariant, and the committed golden snapshots.
    let report = run(&VerifyOptions::default());
    assert!(report.passed(), "{}", report.render());
    // 9 differential + 5 metamorphic + 1 golden check per corpus × 3, plus
    // the 2k-sweep zerocopy-vs-owned differential check.
    assert_eq!(report.checks.len(), 46, "{}", report.render());
}

#[test]
fn suite_selection_is_respected() {
    let only_differential =
        VerifyOptions { metamorphic: false, golden: false, ..VerifyOptions::default() };
    let report = run(&only_differential);
    assert!(report.passed(), "{}", report.render());
    assert!(report.checks.iter().all(|c| c.name.starts_with("differential/")));
}

#[test]
fn golden_suite_fails_against_a_stale_snapshot() {
    // Bless into a scratch directory, tamper with one pinned funnel count,
    // and demand the checker notices: this is the drift signal a category
    // flip in `core::categorize` would produce.
    let dir = std::env::temp_dir().join(format!("mosaic_verify_it_{}", std::process::id()));
    let blessing = run(&VerifyOptions {
        differential: false,
        metamorphic: false,
        bless: true,
        golden_dir: dir.clone(),
        ..VerifyOptions::default()
    });
    assert!(blessing.passed(), "{}", blessing.render());

    let victim = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
    let mut pinned =
        mosaic_pipeline::ResultSnapshot::from_json(&std::fs::read_to_string(&victim).unwrap())
            .unwrap();
    pinned.funnel.valid += 1;
    std::fs::write(&victim, pinned.to_canonical_json()).unwrap();

    let checked = run(&VerifyOptions {
        differential: false,
        metamorphic: false,
        golden_dir: dir.clone(),
        ..VerifyOptions::default()
    });
    assert!(!checked.passed());
    assert_eq!(checked.failures().len(), 1);
    assert!(checked.render().contains("drifted"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn committed_golden_files_are_canonical() {
    // The committed files must be byte-for-byte what bless would write
    // today — i.e. nobody hand-edited them or let them drift formatting.
    ensure_golden();
    for corpus in mosaic_synth::MiniCorpus::standard() {
        let path = golden::default_dir().join(format!("{}.json", corpus.name()));
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
        let fresh = golden::snapshot_of(&corpus).to_canonical_json();
        assert_eq!(committed, fresh, "{} is stale or hand-edited", path.display());
    }
}

#[test]
fn report_json_is_machine_consumable() {
    let report =
        run(&VerifyOptions { metamorphic: false, golden: false, ..VerifyOptions::default() });
    let parsed: VerifyReport = serde_json::from_str(&report.to_json()).unwrap();
    assert_eq!(parsed, report);
}
