//! Conformance harness integration: the full `mosaic verify --all` run must
//! be green on a fresh checkout, and each suite must actually be able to
//! fail (a harness that cannot fail verifies nothing).

use mosaic_verify::{golden, run, VerifyOptions, VerifyReport};

/// Bless `tests/golden/` if any standard snapshot is missing.
///
/// On a checkout that carries the committed snapshots this is a no-op and
/// every comparison below stays strict — any drift fails. The bootstrap
/// exists because the snapshots can only be produced by running the
/// pipeline (`mosaic verify --golden --bless`), so a checkout that predates
/// them must generate rather than fail; the blessed files should then be
/// committed. `Once` serializes the two tests that read the directory.
fn ensure_golden() {
    static BOOTSTRAP: std::sync::Once = std::sync::Once::new();
    BOOTSTRAP.call_once(|| {
        let dir = golden::default_dir();
        let missing = mosaic_synth::MiniCorpus::standard()
            .iter()
            .any(|corpus| !dir.join(format!("{}.json", corpus.name())).exists());
        if missing {
            eprintln!("tests/golden is incomplete — blessing fresh snapshots; commit the results");
            let blessing = run(&VerifyOptions {
                differential: false,
                metamorphic: false,
                bless: true,
                ..VerifyOptions::default()
            });
            assert!(blessing.passed(), "{}", blessing.render());
        }
    });
}

#[test]
fn full_harness_is_green_on_fresh_checkout() {
    ensure_golden();
    // Exactly what CI runs: every differential oracle, every metamorphic
    // invariant, and the committed golden snapshots.
    let report = run(&VerifyOptions::default());
    assert!(report.passed(), "{}", report.render());
    // 7 differential + 5 metamorphic + 1 golden check per corpus × 3.
    assert_eq!(report.checks.len(), 39, "{}", report.render());
}

#[test]
fn suite_selection_is_respected() {
    let only_differential =
        VerifyOptions { metamorphic: false, golden: false, ..VerifyOptions::default() };
    let report = run(&only_differential);
    assert!(report.passed(), "{}", report.render());
    assert!(report.checks.iter().all(|c| c.name.starts_with("differential/")));
}

#[test]
fn golden_suite_fails_against_a_stale_snapshot() {
    // Bless into a scratch directory, tamper with one pinned funnel count,
    // and demand the checker notices: this is the drift signal a category
    // flip in `core::categorize` would produce.
    let dir = std::env::temp_dir().join(format!("mosaic_verify_it_{}", std::process::id()));
    let blessing = run(&VerifyOptions {
        differential: false,
        metamorphic: false,
        bless: true,
        golden_dir: dir.clone(),
        ..VerifyOptions::default()
    });
    assert!(blessing.passed(), "{}", blessing.render());

    let victim = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
    let mut pinned =
        mosaic_pipeline::ResultSnapshot::from_json(&std::fs::read_to_string(&victim).unwrap())
            .unwrap();
    pinned.funnel.valid += 1;
    std::fs::write(&victim, pinned.to_canonical_json()).unwrap();

    let checked = run(&VerifyOptions {
        differential: false,
        metamorphic: false,
        golden_dir: dir.clone(),
        ..VerifyOptions::default()
    });
    assert!(!checked.passed());
    assert_eq!(checked.failures().len(), 1);
    assert!(checked.render().contains("drifted"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn committed_golden_files_are_canonical() {
    // The committed files must be byte-for-byte what bless would write
    // today — i.e. nobody hand-edited them or let them drift formatting.
    ensure_golden();
    for corpus in mosaic_synth::MiniCorpus::standard() {
        let path = golden::default_dir().join(format!("{}.json", corpus.name()));
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
        let fresh = golden::snapshot_of(&corpus).to_canonical_json();
        assert_eq!(committed, fresh, "{} is stale or hand-edited", path.display());
    }
}

#[test]
fn report_json_is_machine_consumable() {
    let report =
        run(&VerifyOptions { metamorphic: false, golden: false, ..VerifyOptions::default() });
    let parsed: VerifyReport = serde_json::from_str(&report.to_json()).unwrap();
    assert_eq!(parsed, report);
}
