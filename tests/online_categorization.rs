//! Online-categorization integration: prefix views behave like real
//! in-flight snapshots across the synthetic population.

use mosaic_core::online::{categorize_at, decision_fraction, truncate_view};
use mosaic_core::Categorizer;
use mosaic_darshan::ops::{OpKind, OperationView};
use mosaic_synth::{Dataset, DatasetConfig, Payload};

#[test]
fn full_prefix_equals_final_verdict_for_all_traces() {
    let ds = Dataset::new(DatasetConfig { n_traces: 300, corruption_rate: 0.0, seed: 61 });
    let categorizer = Categorizer::default();
    for run in ds.iter().take(120) {
        let Payload::Log(log) = run.payload else { unreachable!() };
        let view = OperationView::from_log(&log);
        let full = categorize_at(&categorizer, &view, view.runtime);
        let direct = categorizer.categorize(&view);
        assert_eq!(
            full.read.temporality.label, direct.read.temporality.label,
            "full prefix must equal direct categorization"
        );
        assert_eq!(full.write.temporality.label, direct.write.temporality.label);
    }
}

#[test]
fn truncation_monotonically_accumulates_bytes() {
    let ds = Dataset::new(DatasetConfig { n_traces: 100, corruption_rate: 0.0, seed: 62 });
    for run in ds.iter().take(40) {
        let Payload::Log(log) = run.payload else { unreachable!() };
        let view = OperationView::from_log(&log);
        let mut prev = (0u64, 0u64);
        for f in [0.25, 0.5, 0.75, 1.0] {
            let t = truncate_view(&view, view.runtime * f);
            let now = (t.total_bytes(OpKind::Read), t.total_bytes(OpKind::Write));
            assert!(now.0 >= prev.0, "read bytes shrank: {prev:?} -> {now:?}");
            assert!(now.1 >= prev.1, "write bytes shrank: {prev:?} -> {now:?}");
            prev = now;
        }
        // The full prefix carries everything.
        assert_eq!(prev.0, view.total_bytes(OpKind::Read));
        assert_eq!(prev.1, view.total_bytes(OpKind::Write));
    }
}

#[test]
fn decision_fractions_are_sane_across_the_population() {
    let ds = Dataset::new(DatasetConfig { n_traces: 400, corruption_rate: 0.0, seed: 63 });
    let categorizer = Categorizer::default();
    let fractions = [0.25, 0.5, 0.75, 1.0];
    let mut decided_early = 0usize;
    let mut total = 0usize;
    for run in ds.iter().take(200) {
        let Payload::Log(log) = run.payload else { unreachable!() };
        let view = OperationView::from_log(&log);
        let d = decision_fraction(&categorizer, &view, &fractions);
        // The final fraction always matches itself, so a decision fraction
        // must exist and be one of the sweep points.
        let d = d.expect("1.0 always matches");
        assert!(fractions.contains(&d));
        total += 1;
        if d <= 0.5 {
            decided_early += 1;
        }
    }
    // The calibrated mix front-loads much of the behaviour (quiet, steady
    // and read-on-start traces all decide early). The exact share swings
    // with archetype sampling at this scale — the online_categorization
    // bench measures ~70 % at n=3000 — so assert a robust floor here.
    assert!(decided_early * 3 > total, "only {decided_early}/{total} decided by half time");
}

#[test]
fn meta_events_truncate_with_time() {
    let ds = Dataset::new(DatasetConfig { n_traces: 50, corruption_rate: 0.0, seed: 64 });
    for run in ds.iter().take(20) {
        let Payload::Log(log) = run.payload else { unreachable!() };
        let view = OperationView::from_log(&log);
        let half = truncate_view(&view, view.runtime * 0.5);
        assert!(half.meta.len() <= view.meta.len());
        assert!(half.meta.iter().all(|e| e.time <= view.runtime * 0.5 + 1e-9));
    }
}
