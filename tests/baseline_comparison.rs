//! Baseline comparison integration: MOSAIC vs the FFT detector and the
//! aggregate-statistics categorizer, across the claims of §II-B.

use mosaic_baselines::{AggregateCategorizer, AggregateClass, FftDetector};
use mosaic_core::Categorizer;
use mosaic_darshan::ops::{OpKind, Operation, OperationView};

fn periodic_ops(kind: OpKind, period: f64, bytes: u64, runtime: f64, busy: f64) -> Vec<Operation> {
    let mut ops = Vec::new();
    let mut t = period * 0.3;
    while t + period * busy < runtime {
        ops.push(Operation { kind, start: t, end: t + period * busy, bytes, ranks: 32 });
        t += period;
    }
    ops
}

#[test]
fn both_methods_find_a_single_clean_period() {
    let runtime = 6000.0;
    let writes = periodic_ops(OpKind::Write, 120.0, 1 << 30, runtime, 0.05);
    let view =
        OperationView { runtime, nprocs: 32, reads: vec![], writes: writes.clone(), meta: vec![] };
    let report = Categorizer::default().categorize(&view);
    assert_eq!(report.write.periodic.len(), 1);
    assert!((report.write.periodic[0].period - 120.0).abs() < 15.0);

    let det = FftDetector::default();
    assert!(det.finds_period(&writes, runtime, 120.0, 0.15));
}

#[test]
fn only_mosaic_separates_interleaved_periods() {
    let runtime = 7200.0;
    let mut writes = periodic_ops(OpKind::Write, 600.0, 2 << 30, runtime, 0.04);
    writes.extend(periodic_ops(OpKind::Write, 20.0, 150 << 20, runtime, 0.1));
    writes.sort_by(|a, b| a.start.total_cmp(&b.start));
    let view =
        OperationView { runtime, nprocs: 32, reads: vec![], writes: writes.clone(), meta: vec![] };

    // MOSAIC: two distinct patterns with correct periods and volumes.
    let report = Categorizer::default().categorize(&view);
    assert!(report.write.periodic.len() >= 2, "{:?}", report.write.periodic);
    let periods: Vec<f64> = report.write.periodic.iter().map(|p| p.period).collect();
    assert!(periods.iter().any(|&p| (p - 20.0).abs() < 5.0), "{periods:?}");
    assert!(periods.iter().any(|&p| (p - 600.0).abs() < 80.0), "{periods:?}");

    // FFT baseline: does NOT report both fundamentals among its peaks
    // without also reporting spurious harmonics (the failure §II-B cites).
    let det = FftDetector::default();
    let peaks = det.detect(&writes, runtime);
    let clean_20 = peaks.iter().any(|d| (d.period - 20.0).abs() < 2.0);
    let clean_600 = peaks.iter().any(|d| (d.period - 600.0).abs() < 60.0);
    let harmonics = peaks
        .iter()
        .filter(|d| {
            let p = d.period;
            (p - 10.0).abs() < 1.0 || (p - 300.0).abs() < 30.0 || (p - 6.7).abs() < 0.7
        })
        .count();
    assert!(
        !(clean_20 && clean_600) || harmonics > 0,
        "FFT baseline unexpectedly produced a clean two-period report: {peaks:?}"
    );
}

#[test]
fn aggregate_baseline_loses_temporality() {
    const GB: u64 = 1 << 30;
    let early = OperationView {
        runtime: 1000.0,
        nprocs: 8,
        reads: vec![Operation { kind: OpKind::Read, start: 2.0, end: 20.0, bytes: GB, ranks: 8 }],
        writes: vec![],
        meta: vec![],
    };
    let late = OperationView {
        runtime: 1000.0,
        nprocs: 8,
        reads: vec![Operation {
            kind: OpKind::Read,
            start: 975.0,
            end: 995.0,
            bytes: GB,
            ranks: 8,
        }],
        writes: vec![],
        meta: vec![],
    };

    let agg = AggregateCategorizer::default();
    assert_eq!(agg.classify(&early), AggregateClass::ReadIntensive);
    assert_eq!(agg.classify(&early), agg.classify(&late)); // indistinguishable

    let categorizer = Categorizer::default();
    let r_early = categorizer.categorize(&early);
    let r_late = categorizer.categorize(&late);
    assert_ne!(
        r_early.read.temporality.label, r_late.read.temporality.label,
        "MOSAIC must distinguish what the aggregate baseline cannot"
    );
}

#[test]
fn aggregate_baseline_agrees_on_volume_classes() {
    // Where aggregates ARE sufficient, the two methods agree: insignificant
    // traces are io_inactive, and vice versa.
    use mosaic_synth::{Dataset, DatasetConfig, Payload};
    let ds = Dataset::new(DatasetConfig { n_traces: 300, corruption_rate: 0.0, seed: 19 });
    let agg = AggregateCategorizer::default();
    let categorizer = Categorizer::default();
    let mut agree = 0;
    let mut total = 0;
    for run in ds.iter() {
        let Payload::Log(log) = run.payload else { unreachable!() };
        let view = mosaic_darshan::ops::OperationView::from_log(&log);
        let class = agg.classify(&view);
        let report = categorizer.categorize_log(&log);
        use mosaic_core::category::TemporalityLabel::Insignificant;
        let mosaic_quiet = report.read.temporality.label == Insignificant
            && report.write.temporality.label == Insignificant;
        let agg_quiet =
            class == AggregateClass::IoInactive || class == AggregateClass::MetadataIntensive;
        total += 1;
        if mosaic_quiet == agg_quiet {
            agree += 1;
        }
    }
    let rate = agree as f64 / total as f64;
    assert!(rate > 0.95, "volume-class agreement {rate}");
}

#[test]
fn fft_detector_cost_grows_with_resolution_not_ops() {
    // Structural check on the baseline: detection works at several raster
    // resolutions and the period estimate is stable.
    let runtime = 3600.0;
    let writes = periodic_ops(OpKind::Write, 90.0, 1 << 28, runtime, 0.05);
    for bins in [1024usize, 4096, 16384] {
        let det = FftDetector { bins, ..FftDetector::default() };
        assert!(
            det.finds_period(&writes, runtime, 90.0, 0.2),
            "bins={bins}: {:?}",
            det.detect(&writes, runtime)
        );
    }
}
