//! End-to-end integration: synthetic year-model dataset → full pipeline →
//! funnel, distributions, accuracy. Spans `mosaic-synth`, `mosaic-darshan`,
//! `mosaic-core` and `mosaic-pipeline`.

use mosaic_core::category::{Category, MetadataLabel, OpKindTag, TemporalityLabel};
use mosaic_pipeline::executor::{process, PipelineConfig};
use mosaic_pipeline::source::{ClosureSource, TraceInput};
use mosaic_synth::truth::AccuracyReport;
use mosaic_synth::{Dataset, DatasetConfig, Payload};

fn source_for(ds: &Dataset) -> ClosureSource<impl Fn(usize) -> TraceInput + Sync + '_> {
    ClosureSource::new(ds.len(), move |i| match ds.generate(i).payload {
        Payload::Log(log) => TraceInput::log(log),
        Payload::Bytes(bytes) => TraceInput::bytes(bytes),
    })
}

#[test]
fn funnel_matches_paper_shape() {
    let ds = Dataset::new(DatasetConfig { n_traces: 4000, seed: 101, ..Default::default() });
    let result = process(&source_for(&ds), &PipelineConfig::default());
    let f = &result.funnel;
    assert_eq!(f.total, 4000);
    assert_eq!(f.total, f.evicted() + f.valid);
    // Paper: 32 % corrupted, 8 % unique among valid.
    assert!(
        (0.27..0.38).contains(&f.corruption_fraction()),
        "corruption fraction {}",
        f.corruption_fraction()
    );
    assert!((0.04..0.20).contains(&f.unique_fraction()), "unique fraction {}", f.unique_fraction());
}

#[test]
fn single_run_distribution_matches_table3_shape() {
    let ds = Dataset::new(DatasetConfig { n_traces: 6000, seed: 55, ..Default::default() });
    let result = process(&source_for(&ds), &PipelineConfig::default());
    let counts = result.single_run_counts();

    let frac = |kind, label| counts.fraction(Category::Temporality { kind, label });
    // Most applications are I/O-insignificant (paper: 85 % read / 87 % write).
    assert!(frac(OpKindTag::Read, TemporalityLabel::Insignificant) > 0.6);
    assert!(frac(OpKindTag::Write, TemporalityLabel::Insignificant) > 0.7);
    // read_on_start and write_on_end are the dominant significant labels.
    let read_start = frac(OpKindTag::Read, TemporalityLabel::OnStart);
    let write_end = frac(OpKindTag::Write, TemporalityLabel::OnEnd);
    assert!((0.03..0.20).contains(&read_start), "read_on_start {read_start}");
    assert!((0.03..0.16).contains(&write_end), "write_on_end {write_end}");
    // Periodic writes: ~2 % of applications (Table II single-run).
    let periodic = counts.fraction(Category::Periodic { kind: OpKindTag::Write });
    assert!((0.005..0.06).contains(&periodic), "write periodic {periodic}");
}

#[test]
fn all_runs_shift_toward_heavy_applications() {
    // Table III: the all-runs view is much more I/O-active than the
    // single-run view, because production apps rerun constantly.
    let ds = Dataset::new(DatasetConfig { n_traces: 6000, seed: 56, ..Default::default() });
    let result = process(&source_for(&ds), &PipelineConfig::default());
    let single = result.single_run_counts();
    let all = result.all_runs_counts();

    let read_insig =
        Category::Temporality { kind: OpKindTag::Read, label: TemporalityLabel::Insignificant };
    assert!(
        all.fraction(read_insig) < single.fraction(read_insig) - 0.1,
        "all-runs read-insignificant {} should sit well below single-run {}",
        all.fraction(read_insig),
        single.fraction(read_insig)
    );
    let read_start =
        Category::Temporality { kind: OpKindTag::Read, label: TemporalityLabel::OnStart };
    assert!(all.fraction(read_start) > single.fraction(read_start));
    // Table II: periodic writes ~2 % single-run vs ~8 % all-runs.
    let periodic = Category::Periodic { kind: OpKindTag::Write };
    assert!(all.fraction(periodic) > 1.5 * single.fraction(periodic));
}

#[test]
fn accuracy_is_in_the_paper_band() {
    // §IV-E: 512-trace sample, 92 % accuracy, errors dominated by
    // temporality on unevenly-spread operations.
    let ds = Dataset::new(DatasetConfig { n_traces: 4000, seed: 77, ..Default::default() });
    let categorizer = mosaic_core::Categorizer::default();
    let mut pairs = Vec::new();
    let mut i = 0;
    while pairs.len() < 512 && i < ds.len() {
        let run = ds.generate(i);
        if let (Some(truth), Payload::Log(log)) = (run.truth, &run.payload) {
            pairs.push((truth, categorizer.categorize_log(log)));
        }
        i += 1;
    }
    assert_eq!(pairs.len(), 512);
    let acc = AccuracyReport::score(pairs.iter().map(|(t, r)| (t, r)));
    assert!(
        (0.85..0.99).contains(&acc.accuracy()),
        "accuracy {:.3} outside the plausible band",
        acc.accuracy()
    );
    // The dominant error axis must be temporality, like the paper reports.
    let top = acc.errors_by_axis.iter().max_by_key(|(_, n)| *n).expect("some errors");
    assert!(top.0.contains("temporality"), "dominant error axis {top:?}");
}

#[test]
fn metadata_spike_category_is_populated() {
    let ds = Dataset::new(DatasetConfig { n_traces: 3000, seed: 31, ..Default::default() });
    let result = process(&source_for(&ds), &PipelineConfig::default());
    let all = result.all_runs_counts();
    // Fig 4: high_spike is the most represented metadata category over all
    // runs (60 % on Blue Waters).
    let spike = all.fraction(Category::Metadata(MetadataLabel::HighSpike));
    assert!(spike > 0.3, "high_spike fraction {spike}");
    let multiple = all.fraction(Category::Metadata(MetadataLabel::MultipleSpikes));
    assert!(multiple > 0.2, "multiple_spikes fraction {multiple}");
    assert!(spike > multiple, "high_spike should dominate multiple_spikes");
}

#[test]
fn reports_serialize_for_downstream_consumers() {
    // §III-B4: MOSAIC writes one JSON document per trace.
    let ds = Dataset::new(DatasetConfig { n_traces: 200, seed: 9, ..Default::default() });
    let result = process(&source_for(&ds), &PipelineConfig::default());
    for outcome in result.outcomes.iter().take(20) {
        let json = outcome.report.to_json();
        let back = mosaic_core::TraceReport::from_json(&json).expect("parse back");
        assert_eq!(back, outcome.report);
    }
}
