//! Property pin for the zero-copy hot path: [`TraceView::parse`] must
//! accept, reject, decode, and validate **exactly** like the owned
//! reference parser `mdf::from_bytes` on every input — arbitrary garbage,
//! mutated real traces, and structurally valid logs with hostile counter
//! values. The borrowed parser additionally must never panic.
//!
//! Deliberately compares parse results and validity reports, not pipeline
//! aggregates: arbitrary `i64` counters are free to be absurd here, and the
//! contract under test is the parser pair, not downstream arithmetic.

use mosaic_darshan::job::JobHeader;
use mosaic_darshan::log::TraceLog;
use mosaic_darshan::record::PosixRecord;
use mosaic_darshan::synthutil::Crc32;
use mosaic_darshan::validate;
use mosaic_darshan::view::{validate_view, TraceView};
use mosaic_darshan::{mdf, TraceLogBuilder};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// The agreement contract, applied to one byte buffer: identical
/// accept/reject decision, identical error (variant and payload), identical
/// decoded log, identical validity report.
fn assert_parsers_agree(bytes: &[u8]) -> TestCaseResult {
    let owned = mdf::from_bytes(bytes);
    let borrowed = TraceView::parse(bytes);
    match (&owned, &borrowed) {
        (Ok(log), Ok(view)) => {
            prop_assert_eq!(&view.to_log(), log, "decoded logs differ");
            prop_assert_eq!(
                validate_view(view),
                validate::validate(log),
                "validity reports differ"
            );
            prop_assert_eq!(view.n_records(), log.records().len());
            prop_assert_eq!(view.exe, log.header().exe.as_str());
            prop_assert_eq!(view.app_key(), log.header().app_key());
        }
        (Err(owned_err), Err(borrowed_err)) => {
            prop_assert_eq!(borrowed_err, owned_err, "rejection errors differ");
        }
        _ => {
            prop_assert!(
                false,
                "accept/reject disagree: owned accepts = {}, borrowed accepts = {}",
                owned.is_ok(),
                borrowed.is_ok()
            );
        }
    }
    Ok(())
}

/// A small but real trace to mutate: mixed ranks, read activity, meta ops.
fn seed_trace_bytes() -> Vec<u8> {
    let mut b = TraceLogBuilder::new(
        JobHeader::new(7, 99, 16, 1_600_000_000, 1_600_003_600).with_exe("/apps/ior/ior -a POSIX"),
    );
    for i in 0..4i64 {
        let r = b.begin_record(&format!("/scratch/out.{i}"), i as i32 - 1);
        b.record_mut(r)
            .set(mosaic_darshan::counter::PosixCounter::Reads, 8 * (i + 1))
            .set(mosaic_darshan::counter::PosixCounter::BytesRead, 4096 * (i + 1))
            .set(mosaic_darshan::counter::PosixCounter::Opens, 2)
            .setf(mosaic_darshan::counter::PosixFCounter::ReadStartTimestamp, i as f64)
            .setf(mosaic_darshan::counter::PosixFCounter::ReadEndTimestamp, i as f64 + 0.25);
    }
    mdf::to_bytes(&b.finish())
}

/// Structurally valid logs with adversarial contents: arbitrary counters
/// (including negatives and near-overflow magnitudes), arbitrary ranks,
/// records with and without name-table entries.
fn arb_log() -> impl Strategy<Value = TraceLog> {
    let arb_record = (
        any::<u64>(),
        -3i32..70,
        prop::collection::vec(any::<i64>(), mosaic_darshan::counter::N_POSIX_COUNTERS),
        prop::collection::vec(-1.0e9f64..1.0e9, mosaic_darshan::counter::N_POSIX_FCOUNTERS),
        any::<bool>(),
    );
    (
        any::<u64>(),
        any::<u32>(),
        0u32..2048,
        -1000i64..2_000_000_000,
        0i64..2_000_000_000,
        prop::collection::vec(arb_record, 0..12),
    )
        .prop_map(|(job_id, uid, nprocs, start, end, recs)| {
            let header = JobHeader::new(job_id, uid, nprocs, start, end).with_exe("/bin/prop");
            let mut names = BTreeMap::new();
            let records: Vec<PosixRecord> = recs
                .into_iter()
                .map(|(id, rank, counters, fcounters, named)| {
                    let mut rec = PosixRecord::new(id, rank);
                    rec.counters.copy_from_slice(&counters);
                    rec.fcounters.copy_from_slice(&fcounters);
                    if named {
                        names.insert(id, format!("/prop/{id}"));
                    }
                    rec
                })
                .collect();
            TraceLog::from_parts(header, records, names)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn arbitrary_bytes_never_panic_and_agree(
        bytes in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        assert_parsers_agree(&bytes)?;
    }

    #[test]
    fn magic_prefixed_garbage_agrees(
        tail in prop::collection::vec(any::<u8>(), 0..1024),
    ) {
        // Forcing the magic past the first check exercises the checksum and
        // header decoding paths instead of bailing at byte 0.
        let mut bytes = mdf::MAGIC.to_vec();
        bytes.extend(tail);
        assert_parsers_agree(&bytes)?;
    }

    #[test]
    fn truncated_and_extended_real_traces_agree(
        cut in 0usize..2000,
        junk in prop::collection::vec(any::<u8>(), 0..48),
    ) {
        let mut bytes = seed_trace_bytes();
        let cut = cut.min(bytes.len());
        bytes.truncate(cut);
        bytes.extend(junk);
        assert_parsers_agree(&bytes)?;
    }

    #[test]
    fn bit_flipped_real_traces_agree(pos in 0usize..2000, mask in 1u8..=255) {
        let mut bytes = seed_trace_bytes();
        let pos = pos % bytes.len();
        bytes[pos] ^= mask;
        assert_parsers_agree(&bytes)?;
    }

    #[test]
    fn recrced_corruptions_reach_structural_checks_and_agree(
        pos in 0usize..2000,
        mask in 1u8..=255,
    ) {
        // Flip a payload byte, then repair the CRC footer: both parsers get
        // past the checksum and must agree on the *structural* verdict
        // (record counts, module tags, name-table shape, trailing bytes).
        let mut bytes = seed_trace_bytes();
        let pos = pos % (bytes.len() - 4);
        bytes[pos] ^= mask;
        let crc = Crc32::checksum(&bytes[..bytes.len() - 4]);
        let footer = bytes.len() - 4;
        bytes[footer..].copy_from_slice(&crc.to_le_bytes());
        assert_parsers_agree(&bytes)?;
    }

    #[test]
    fn adversarial_valid_logs_decode_and_validate_identically(log in arb_log()) {
        let bytes = mdf::to_bytes(&log);
        assert_parsers_agree(&bytes)?;
        // Both parsers must *accept* a well-formed serialization, however
        // hostile the counter values are.
        prop_assert!(TraceView::parse(&bytes).is_ok());
    }
}
